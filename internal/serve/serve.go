// Package serve exposes a trained StencilMART framework as an HTTP
// prediction service: POST a stencil and a target GPU, get back the
// predicted optimization class, a tuned parameter setting, predicted
// times on every catalog GPU, and the rent-advisor verdict. The server
// is the deploy-side half of the train-once/predict-cheaply contract —
// it never trains or profiles; it serves a checkpoint.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stencilmart/internal/core"
	"stencilmart/internal/stencil"
)

// DefaultTimeout bounds one request's prediction work.
const DefaultTimeout = 30 * time.Second

// DefaultMaxInFlight bounds concurrently admitted /predict requests;
// excess load is shed with 503 instead of queueing without bound behind
// the serialized model.
const DefaultMaxInFlight = 8

// MaxRequestBytes bounds a /predict body; larger requests get 413.
const MaxRequestBytes = 1 << 20

// Options tunes the hardened server; zero values select the defaults.
type Options struct {
	// Timeout bounds one request's prediction work (DefaultTimeout if 0).
	Timeout time.Duration
	// MaxInFlight bounds admitted /predict requests (DefaultMaxInFlight
	// if 0); requests beyond it are shed with 503 + Retry-After.
	MaxInFlight int
}

// endpointStats aggregates per-endpoint counters with atomics so the
// stats page never contends with request handling.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	totalNS  atomic.Int64
}

func (s *endpointStats) observe(d time.Duration, failed bool) {
	s.requests.Add(1)
	s.totalNS.Add(d.Nanoseconds())
	if failed {
		s.errors.Add(1)
	}
}

// EndpointSnapshot is one endpoint's counters in /statsz.
type EndpointSnapshot struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	AvgMillis float64 `json:"avg_millis"`
}

func (s *endpointStats) snapshot() EndpointSnapshot {
	n := s.requests.Load()
	out := EndpointSnapshot{Requests: n, Errors: s.errors.Load()}
	if n > 0 {
		out.AvgMillis = float64(s.totalNS.Load()) / float64(n) / 1e6
	}
	return out
}

// Server serves predictions from one trained framework.
type Server struct {
	fw *core.Framework
	// mu serializes model access: the nn mechanisms share forward
	// scratch buffers and are not goroutine-safe. Requests still overlap
	// in decode/encode; only the predict step is serial.
	mu      sync.Mutex
	timeout time.Duration
	started time.Time

	healthz endpointStats
	statsz  endpointStats
	predict endpointStats

	// inflight is the /predict admission semaphore; fault counters feed
	// the /statsz fault snapshot.
	inflight chan struct{}
	panics   atomic.Uint64
	shed     atomic.Uint64
	oversize atomic.Uint64

	// predictFn is the prediction step; tests substitute doubles that
	// block or panic. Callers of it must hold mu.
	predictFn func(archName string, s stencil.Stencil) (*core.ServePrediction, error)
}

// New wraps a trained framework in a server with default hardening. The
// framework must already hold trained models (TrainAll or a loaded
// checkpoint).
func New(fw *core.Framework, timeout time.Duration) (*Server, error) {
	return NewWithOptions(fw, Options{Timeout: timeout})
}

// NewWithOptions is New with explicit hardening knobs.
func NewWithOptions(fw *core.Framework, opts Options) (*Server, error) {
	if fw.Trained == nil {
		return nil, fmt.Errorf("serve: framework has no trained models (train or load a checkpoint first)")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	s := &Server{
		fw:       fw,
		timeout:  opts.Timeout,
		started:  time.Now(),
		inflight: make(chan struct{}, opts.MaxInFlight),
	}
	s.predictFn = s.fw.ServePredict
	return s, nil
}

// Handler returns the service's HTTP handler: panic recovery around
// everything, request timeouts on the prediction endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.Handle("/predict", http.TimeoutHandler(http.HandlerFunc(s.handlePredict), s.timeout, `{"error":"prediction timed out"}`))
	return s.recoverPanics(mux)
}

// recoverPanics converts a panicking handler into a 500 JSON error and a
// counted fault instead of a closed connection — one poisoned request
// must not look like a server crash to every other client.
// http.TimeoutHandler re-raises handler panics on the serving goroutine,
// so panics under the timeout wrapper land here too.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("internal error: %v", v)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Run serves on addr until ctx is cancelled, then shuts down gracefully
// (in-flight requests drain). Pass an ":0" addr to bind a random port;
// the bound address is printed as "serving on http://ADDR" so callers
// (and the smoke script) can discover it.
func (s *Server) Run(ctx context.Context, addr string, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logf("serving on http://%s", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		logf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		<-done // Serve has returned ErrServerClosed
		return nil
	}
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.healthz.observe(time.Since(start), false) }()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// StatsResponse is the /statsz body: the sim memo-cache counters and
// per-endpoint latency aggregates.
type StatsResponse struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	SimCache      SimCacheSnapshot            `json:"sim_cache"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Faults        FaultSnapshot               `json:"faults"`
}

// FaultSnapshot reports the hardening counters: every time the server
// absorbed a fault instead of failing.
type FaultSnapshot struct {
	// PanicsRecovered counts handler panics converted to 500 responses.
	PanicsRecovered uint64 `json:"panics_recovered"`
	// LoadShed counts /predict requests refused with 503 at capacity.
	LoadShed uint64 `json:"load_shed"`
	// OversizeRequests counts bodies refused with 413.
	OversizeRequests uint64 `json:"oversize_requests"`
}

// SimCacheSnapshot reports the simulator memoization counters.
type SimCacheSnapshot struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.statsz.observe(time.Since(start), false) }()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	cs := s.fw.Model.CacheStats()
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		SimCache: SimCacheSnapshot{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Entries: cs.Entries, HitRate: cs.HitRate(),
		},
		Endpoints: map[string]EndpointSnapshot{
			"healthz": s.healthz.snapshot(),
			"statsz":  s.statsz.snapshot(),
			"predict": s.predict.snapshot(),
		},
		Faults: FaultSnapshot{
			PanicsRecovered:  s.panics.Load(),
			LoadShed:         s.shed.Load(),
			OversizeRequests: s.oversize.Load(),
		},
	})
}

// PredictRequest is the /predict body. A stencil is named (classic
// "star3d2r"-style names) or spelled as raw offsets; exactly one form
// must be used.
type PredictRequest struct {
	// Stencil is a classic stencil name, e.g. "star3d2r".
	Stencil string `json:"stencil,omitempty"`
	// Name, Dims, and Points spell a custom stencil from raw offsets
	// ([dx,dy,dz] triples; dz must be 0 for 2-D).
	Name   string  `json:"name,omitempty"`
	Dims   int     `json:"dims,omitempty"`
	Points [][]int `json:"points,omitempty"`
	// GPU is the target architecture name (P100, V100, 2080Ti, A100).
	GPU string `json:"gpu"`
}

// stencilFromRequest resolves the request's stencil form.
func stencilFromRequest(req PredictRequest) (stencil.Stencil, error) {
	named := req.Stencil != ""
	raw := len(req.Points) > 0
	switch {
	case named && raw:
		return stencil.Stencil{}, fmt.Errorf("give either a stencil name or raw points, not both")
	case named:
		return stencil.ByName(req.Stencil)
	case raw:
		name := req.Name
		if name == "" {
			name = "custom"
		}
		pts := make([]stencil.Point, len(req.Points))
		for i, p := range req.Points {
			if len(p) != 3 {
				return stencil.Stencil{}, fmt.Errorf("point %d has %d coordinates, want [dx,dy,dz]", i, len(p))
			}
			pts[i] = stencil.Point{Dx: p[0], Dy: p[1], Dz: p[2]}
		}
		return stencil.New(name, req.Dims, pts)
	default:
		return stencil.Stencil{}, fmt.Errorf("request names no stencil")
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.predict.observe(time.Since(start), failed) }()

	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}

	// Admission control: shed load beyond the in-flight cap instead of
	// queueing unboundedly behind the serialized model.
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server at capacity, retry later"})
		return
	}

	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.oversize.Add(1)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.GPU == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing gpu"})
		return
	}
	st, err := stencilFromRequest(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	// The unlock is deferred inside the closure so a panicking predict
	// releases the model mutex on its way to the recovery middleware.
	pred, err := func() (*core.ServePrediction, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.predictFn(req.GPU, st)
	}()
	if err != nil {
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "unknown") ||
			strings.Contains(err.Error(), "not in dataset") ||
			strings.Contains(err.Error(), "no trained") {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, pred)
}
