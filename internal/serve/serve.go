// Package serve exposes a trained StencilMART framework as an HTTP
// prediction service: POST a stencil and a target GPU, get back the
// predicted optimization class, a tuned parameter setting, predicted
// times on every catalog GPU, and the rent-advisor verdict. The server
// is the deploy-side half of the train-once/predict-cheaply contract —
// it never trains or profiles; it serves a checkpoint.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stencilmart/internal/core"
	"stencilmart/internal/stencil"
)

// DefaultTimeout bounds one request's prediction work.
const DefaultTimeout = 30 * time.Second

// endpointStats aggregates per-endpoint counters with atomics so the
// stats page never contends with request handling.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	totalNS  atomic.Int64
}

func (s *endpointStats) observe(d time.Duration, failed bool) {
	s.requests.Add(1)
	s.totalNS.Add(d.Nanoseconds())
	if failed {
		s.errors.Add(1)
	}
}

// EndpointSnapshot is one endpoint's counters in /statsz.
type EndpointSnapshot struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	AvgMillis float64 `json:"avg_millis"`
}

func (s *endpointStats) snapshot() EndpointSnapshot {
	n := s.requests.Load()
	out := EndpointSnapshot{Requests: n, Errors: s.errors.Load()}
	if n > 0 {
		out.AvgMillis = float64(s.totalNS.Load()) / float64(n) / 1e6
	}
	return out
}

// Server serves predictions from one trained framework.
type Server struct {
	fw *core.Framework
	// mu serializes model access: the nn mechanisms share forward
	// scratch buffers and are not goroutine-safe. Requests still overlap
	// in decode/encode; only the predict step is serial.
	mu      sync.Mutex
	timeout time.Duration
	started time.Time

	healthz endpointStats
	statsz  endpointStats
	predict endpointStats
}

// New wraps a trained framework in a server. The framework must already
// hold trained models (TrainAll or a loaded checkpoint).
func New(fw *core.Framework, timeout time.Duration) (*Server, error) {
	if fw.Trained == nil {
		return nil, fmt.Errorf("serve: framework has no trained models (train or load a checkpoint first)")
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Server{fw: fw, timeout: timeout, started: time.Now()}, nil
}

// Handler returns the service's HTTP handler with request timeouts
// applied to the prediction endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.Handle("/predict", http.TimeoutHandler(http.HandlerFunc(s.handlePredict), s.timeout, `{"error":"prediction timed out"}`))
	return mux
}

// Run serves on addr until ctx is cancelled, then shuts down gracefully
// (in-flight requests drain). Pass an ":0" addr to bind a random port;
// the bound address is printed as "serving on http://ADDR" so callers
// (and the smoke script) can discover it.
func (s *Server) Run(ctx context.Context, addr string, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logf("serving on http://%s", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		logf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		<-done // Serve has returned ErrServerClosed
		return nil
	}
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.healthz.observe(time.Since(start), false) }()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// StatsResponse is the /statsz body: the sim memo-cache counters and
// per-endpoint latency aggregates.
type StatsResponse struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	SimCache      SimCacheSnapshot            `json:"sim_cache"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

// SimCacheSnapshot reports the simulator memoization counters.
type SimCacheSnapshot struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.statsz.observe(time.Since(start), false) }()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	cs := s.fw.Model.CacheStats()
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		SimCache: SimCacheSnapshot{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Entries: cs.Entries, HitRate: cs.HitRate(),
		},
		Endpoints: map[string]EndpointSnapshot{
			"healthz": s.healthz.snapshot(),
			"statsz":  s.statsz.snapshot(),
			"predict": s.predict.snapshot(),
		},
	})
}

// PredictRequest is the /predict body. A stencil is named (classic
// "star3d2r"-style names) or spelled as raw offsets; exactly one form
// must be used.
type PredictRequest struct {
	// Stencil is a classic stencil name, e.g. "star3d2r".
	Stencil string `json:"stencil,omitempty"`
	// Name, Dims, and Points spell a custom stencil from raw offsets
	// ([dx,dy,dz] triples; dz must be 0 for 2-D).
	Name   string  `json:"name,omitempty"`
	Dims   int     `json:"dims,omitempty"`
	Points [][]int `json:"points,omitempty"`
	// GPU is the target architecture name (P100, V100, 2080Ti, A100).
	GPU string `json:"gpu"`
}

// stencilFromRequest resolves the request's stencil form.
func stencilFromRequest(req PredictRequest) (stencil.Stencil, error) {
	named := req.Stencil != ""
	raw := len(req.Points) > 0
	switch {
	case named && raw:
		return stencil.Stencil{}, fmt.Errorf("give either a stencil name or raw points, not both")
	case named:
		return stencil.ByName(req.Stencil)
	case raw:
		name := req.Name
		if name == "" {
			name = "custom"
		}
		pts := make([]stencil.Point, len(req.Points))
		for i, p := range req.Points {
			if len(p) != 3 {
				return stencil.Stencil{}, fmt.Errorf("point %d has %d coordinates, want [dx,dy,dz]", i, len(p))
			}
			pts[i] = stencil.Point{Dx: p[0], Dy: p[1], Dz: p[2]}
		}
		return stencil.New(name, req.Dims, pts)
	default:
		return stencil.Stencil{}, fmt.Errorf("request names no stencil")
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.predict.observe(time.Since(start), failed) }()

	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.GPU == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing gpu"})
		return
	}
	st, err := stencilFromRequest(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	s.mu.Lock()
	pred, err := s.fw.ServePredict(req.GPU, st)
	s.mu.Unlock()
	if err != nil {
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "unknown") ||
			strings.Contains(err.Error(), "not in dataset") ||
			strings.Contains(err.Error(), "no trained") {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, pred)
}
