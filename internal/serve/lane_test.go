package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseLane(t *testing.T) {
	cases := []struct {
		in   string
		want Lane
		ok   bool
	}{
		{"", LaneF64, true},
		{"f64", LaneF64, true},
		{"f32", LaneF32, true},
		{"f16", "", false},
		{"F32", "", false},
	}
	for _, tc := range cases {
		got, err := ParseLane(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseLane(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseLane(%q) accepted", tc.in)
		}
	}
}

// TestPredictLaneParam routes one request down each lane through the
// full HTTP path. The f32 response must carry the same shape and the
// same class decision as the f64 one (the smoke corpus is nowhere near
// a decision tie for this probe); an unknown lane is a 400 before any
// scoring work.
func TestPredictLaneParam(t *testing.T) {
	h := testServer(t).Handler()

	post := func(lane string) (int, map[string]any) {
		rec := httptest.NewRecorder()
		url := "/predict"
		if lane != "" {
			url += "?lane=" + lane
		}
		req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(`{"stencil":"star2d2r","gpu":"A100"}`))
		h.ServeHTTP(rec, req)
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("lane %q: response %q is not JSON: %v", lane, rec.Body.String(), err)
		}
		return rec.Code, out
	}

	code64, out64 := post("f64")
	if code64 != http.StatusOK {
		t.Fatalf("f64 lane status %d: %v", code64, out64)
	}
	code32, out32 := post("f32")
	if code32 != http.StatusOK {
		t.Fatalf("f32 lane status %d: %v", code32, out32)
	}
	for _, field := range []string{"class", "proba", "oc", "params", "predicted_seconds"} {
		if _, ok := out32[field]; !ok {
			t.Errorf("f32 response missing %q: %v", field, out32)
		}
	}
	if out32["class"] != out64["class"] {
		t.Errorf("lanes disagree on class: f32 %v vs f64 %v", out32["class"], out64["class"])
	}

	if code, out := post("f16"); code != http.StatusBadRequest {
		t.Fatalf("unknown lane status %d: %v", code, out)
	} else if _, ok := out["error"]; !ok {
		t.Fatalf("unknown lane missing error body: %v", out)
	}
}

// TestStatszLaneCounters pins the per-lane request accounting on
// /statsz: the default lane is reported, and an f32 request moves only
// the f32 counter.
func TestStatszLaneCounters(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	stats := func() StatsResponse {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("statsz status %d", rec.Code)
		}
		var st StatsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	before := stats()
	if before.Lanes.DefaultLane != LaneF64 {
		t.Errorf("default lane %q, want %q", before.Lanes.DefaultLane, LaneF64)
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/predict?lane=f32", strings.NewReader(`{"stencil":"box2d1r","gpu":"V100"}`))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("f32 predict status %d: %s", rec.Code, rec.Body.String())
	}
	postPredict(t, h, `{"stencil":"box2d1r","gpu":"V100"}`)

	after := stats()
	if after.Lanes.F32Requests != before.Lanes.F32Requests+1 {
		t.Errorf("f32 counter %d -> %d, want +1", before.Lanes.F32Requests, after.Lanes.F32Requests)
	}
	if after.Lanes.F64Requests != before.Lanes.F64Requests+1 {
		t.Errorf("f64 counter %d -> %d, want +1", before.Lanes.F64Requests, after.Lanes.F64Requests)
	}
}
