package registry

import (
	"errors"
	"os"
	"runtime"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stencilmart/internal/core"
)

// trainedStub returns a framework that passes the registry's trained
// check without the cost of real training; registry mechanics never look
// inside the models.
func trainedStub() *core.Framework {
	return &core.Framework{Trained: &core.Trained{}}
}

func TestPublishAssignsSequentialVersions(t *testing.T) {
	r := New()
	for i, want := range []string{"v1", "v2", "v3"} {
		v, err := r.Publish(trainedStub())
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("publish %d gave %q, want %q", i, v, want)
		}
		if cur := r.CurrentVersion(); cur != want {
			t.Fatalf("current %q after publishing %q", cur, want)
		}
	}
	if got := len(r.Versions()); got != 3 {
		t.Fatalf("%d versions listed, want 3", got)
	}
}

func TestPublishRejectsUntrained(t *testing.T) {
	r := New()
	if _, err := r.Publish(&core.Framework{}); !errors.Is(err, ErrUntrained) {
		t.Fatalf("untrained publish gave %v", err)
	}
	if _, err := r.Publish(nil); !errors.Is(err, ErrUntrained) {
		t.Fatalf("nil publish gave %v", err)
	}
	if _, err := r.Acquire(""); !errors.Is(err, ErrNoModel) {
		t.Fatalf("acquire on empty registry gave %v", err)
	}
}

// TestAcquirePinning: "" follows the current pointer across swaps, while
// explicit pins keep resolving their version; unknown pins fail.
func TestAcquirePinning(t *testing.T) {
	r := New()
	fw1, fw2 := trainedStub(), trainedStub()
	if _, err := r.Publish(fw1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(fw2); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, pin string
		want      *core.Framework
		wantErr   error
	}{
		{"unpinned follows current", "", fw2, nil},
		{"pin old version", "v1", fw1, nil},
		{"pin current version", "v2", fw2, nil},
		{"unknown version", "v9", nil, ErrUnknownVersion},
		{"malformed version", "latest", nil, ErrUnknownVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := r.Acquire(tc.pin)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Acquire(%q) = %v, want %v", tc.pin, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer h.Release()
			if h.Framework() != tc.want {
				t.Fatalf("Acquire(%q) leased %s, wrong framework", tc.pin, h.Version())
			}
		})
	}
}

// TestRetireDrainsOutstandingHandles: retire must not return while a
// handle (an in-flight batch) still leases the version, and must return
// promptly once the last lease is released.
func TestRetireDrainsOutstandingHandles(t *testing.T) {
	r := New()
	if _, err := r.Publish(trainedStub()); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("v1") // the in-flight batch
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(trainedStub()); err != nil { // v2 takes over
		t.Fatal(err)
	}

	retired := make(chan error, 1)
	go func() { retired <- r.Retire("v1") }()

	// Retire must block while the handle is outstanding.
	select {
	case err := <-retired:
		t.Fatalf("retire returned (%v) with a handle still leased", err)
	case <-time.After(50 * time.Millisecond):
	}
	// A retiring version refuses new leases.
	if _, err := r.Acquire("v1"); !errors.Is(err, ErrRetiring) {
		t.Fatalf("acquire of retiring version gave %v", err)
	}
	// The leased framework is still fully usable until released.
	if h.Framework() == nil {
		t.Fatal("leased framework vanished during retire")
	}

	h.Release()
	select {
	case err := <-retired:
		if err != nil {
			t.Fatalf("retire failed after drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retire never returned after the last release")
	}
	if _, err := r.Acquire("v1"); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("acquire of retired version gave %v, want unknown", err)
	}
	if got := len(r.Versions()); got != 1 {
		t.Fatalf("%d versions after retire, want 1", got)
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	r := New()
	if _, err := r.Publish(trainedStub()); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h.Release() // must not drive the refcount negative
	h2, err := r.Acquire("")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if refs := r.Versions()[0].Refs; refs != 1 {
		t.Fatalf("refs %d after double release + one acquire, want 1", refs)
	}
}

func TestRetireCurrentRefused(t *testing.T) {
	r := New()
	if _, err := r.Publish(trainedStub()); err != nil {
		t.Fatal(err)
	}
	if err := r.Retire("v1"); err == nil {
		t.Fatal("retiring the current version succeeded")
	}
	if err := r.Retire("v9"); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("retiring unknown version gave %v", err)
	}
}

// TestPublishFileFailureLeavesPreviousServing: a corrupt checkpoint must
// not disturb the registry — the old version stays current and
// acquirable.
func TestPublishFileFailureLeavesPreviousServing(t *testing.T) {
	r := New()
	fw1 := trainedStub()
	if _, err := r.Publish(fw1); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "corrupt.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PublishFile(bad); err == nil {
		t.Fatal("corrupt checkpoint published")
	}
	if _, err := r.PublishFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing checkpoint published")
	}
	if cur := r.CurrentVersion(); cur != "v1" {
		t.Fatalf("current %q after failed publishes, want v1", cur)
	}
	h, err := r.Acquire("")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Framework() != fw1 {
		t.Fatal("previous framework no longer serving after failed publish")
	}
}

// TestSwapUnderLoadStress: readers continuously acquire/release the
// current version while a publisher rolls v2..v6 and retires each
// predecessor. No acquire of "" may ever fail or observe a nil
// framework, and every retire must complete. Run under -race this is the
// registry's interleaving probe.
func TestSwapUnderLoadStress(t *testing.T) {
	r := New()
	if _, err := r.Publish(trainedStub()); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var failures atomic.Uint64
	var wg sync.WaitGroup
	readers := 8
	if testing.Short() {
		readers = 2
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := r.Acquire("")
				if err != nil || h.Framework() == nil {
					failures.Add(1)
					continue
				}
				h.Release()
			}
		}()
	}

	prev := "v1"
	for i := 0; i < 5; i++ {
		v, err := r.Publish(trainedStub())
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Retire(prev); err != nil {
			t.Fatalf("retire %s during load: %v", prev, err)
		}
		prev = v
	}
	close(stop)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d unpinned acquires failed during rollout", failures.Load())
	}
	vs := r.Versions()
	if len(vs) != 1 || vs[0].Version != "v6" || !vs[0].Current {
		t.Fatalf("versions after rollout: %+v, want only v6 current", vs)
	}
	if vs[0].Refs != 0 {
		t.Fatalf("leaked %d refs after rollout", vs[0].Refs)
	}
}

// TestRetireRacesPinnedAcquire: the breaker fallback walk pins explicit
// versions while rollouts retire them. Hammering Acquire("v1") against a
// concurrent Retire("v1") must never hand out a retired framework: every
// successful acquire strictly precedes Retire's return (the held ref
// blocks the drain), and once Retire returns the version is gone for
// good.
func TestRetireRacesPinnedAcquire(t *testing.T) {
	r := New()
	if _, err := r.Publish(trainedStub()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(trainedStub()); err != nil { // v2 stays current
		t.Fatal(err)
	}

	var retired atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := r.Acquire("v1")
				if err != nil {
					// ErrRetiring / ErrUnknownVersion are the only legal
					// refusals once the drain begins.
					if !errors.Is(err, ErrRetiring) && !errors.Is(err, ErrUnknownVersion) {
						t.Errorf("acquire v1 failed with %v", err)
					}
					continue
				}
				// Success means the lease pinned v1 before the drain: Retire
				// blocks on this ref, so it cannot have returned yet.
				if retired.Load() {
					t.Error("acquired v1 after Retire(v1) returned")
				}
				if h.Framework() == nil || h.Framework().Trained == nil {
					t.Error("acquired handle exposes a torn framework")
				}
				runtime.Gosched()
				h.Release()
			}
		}()
	}

	time.Sleep(2 * time.Millisecond) // let the acquirers reach steady state
	if err := r.Retire("v1"); err != nil {
		t.Fatalf("retire v1 under pinned load: %v", err)
	}
	retired.Store(true)
	close(stop)
	wg.Wait()

	if _, err := r.Acquire("v1"); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("acquire after retire gave %v, want ErrUnknownVersion", err)
	}
	vs := r.Versions()
	if len(vs) != 1 || vs[0].Version != "v2" || vs[0].Refs != 0 {
		t.Fatalf("versions after drain: %+v, want only v2 with zero refs", vs)
	}
}
