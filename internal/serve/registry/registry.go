// Package registry holds the serving tier's versioned model set: every
// published framework checkpoint gets a version name (v1, v2, ...), one
// version is "current", and requests acquire refcounted handles instead
// of taking a global model lock. Rollout is load-new/drain-old: publish a
// new version (instantly current for unpinned traffic), then retire the
// old one — Retire blocks until every in-flight batch holding a handle
// has released it, so no request ever observes a torn or freed model.
// Requests pinned to an explicit version (?model=vN) keep resolving that
// version across swaps until it is retired.
package registry

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"stencilmart/internal/core"
)

// ErrUnknownVersion is returned by Acquire and Retire for a version that
// was never published or has already been retired.
var ErrUnknownVersion = errors.New("registry: unknown model version")

// ErrRetiring is returned by Acquire for a version that is draining: no
// new requests may pin it.
var ErrRetiring = errors.New("registry: model version is retiring")

// ErrNoModel is returned by Acquire("") before anything is published.
var ErrNoModel = errors.New("registry: no model published")

// ErrUntrained rejects publishing a framework without trained models.
var ErrUntrained = errors.New("registry: framework has no trained models")

type entry struct {
	version  string
	fw       *core.Framework
	refs     int
	retiring bool
	// compileMillis is how long the f32 lane took to compile at publish
	// time; 0 when the model set has no f32 form.
	compileMillis float64
}

// Registry is safe for concurrent use. Acquire/Release critical sections
// are a few pointer operations — contention is negligible next to the
// model work they used to serialize.
type Registry struct {
	mu       sync.Mutex
	drained  *sync.Cond // signalled when any entry's refcount hits zero
	versions map[string]*entry
	order    []string // publish order, for stable listings
	current  *entry
	nextID   int
}

// New returns an empty registry.
func New() *Registry {
	r := &Registry{versions: make(map[string]*entry)}
	r.drained = sync.NewCond(&r.mu)
	return r
}

// Publish adds a trained framework as the next version and makes it
// current for unpinned traffic. Existing versions stay acquirable by pin
// until retired. The f32 inference lane compiles here — at publish, off
// the serving path — so the first f32 request never pays the model
// build; a model set with no f32 form publishes anyway (f32 requests
// against it fail at scoring time) and records a zero compile time.
func (r *Registry) Publish(fw *core.Framework) (string, error) {
	if fw == nil || fw.Trained == nil {
		return "", ErrUntrained
	}
	// Compile before taking the lock: serving traffic on other versions
	// must not stall behind a model build.
	start := time.Now()
	var compileMillis float64
	if _, err := fw.CompiledF32(); err == nil {
		compileMillis = float64(time.Since(start).Nanoseconds()) / 1e6
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	v := fmt.Sprintf("v%d", r.nextID)
	e := &entry{version: v, fw: fw, compileMillis: compileMillis}
	r.versions[v] = e
	r.order = append(r.order, v)
	r.current = e
	return v, nil
}

// PublishFile loads a checkpoint from disk and publishes it. A load or
// validation failure leaves the registry untouched — the previous
// current version keeps serving.
func (r *Registry) PublishFile(path string) (string, error) {
	fw, err := core.LoadFrameworkFile(path)
	if err != nil {
		return "", err
	}
	return r.Publish(fw)
}

// Handle is one request's lease on a model version. Release exactly once
// when scoring is done; Release is idempotent.
type Handle struct {
	r    *Registry
	e    *entry
	once sync.Once
}

// Framework returns the leased model set.
func (h *Handle) Framework() *core.Framework { return h.e.fw }

// Version returns the leased version name.
func (h *Handle) Version() string { return h.e.version }

// Release returns the lease. The last release of a retiring version
// unblocks its Retire.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.r.mu.Lock()
		h.e.refs--
		if h.e.refs == 0 {
			h.r.drained.Broadcast()
		}
		h.r.mu.Unlock()
	})
}

// Acquire leases a version: "" means current. Unknown or retiring
// versions fail; the caller maps those to 404.
func (r *Registry) Acquire(version string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var e *entry
	if version == "" {
		e = r.current
		if e == nil {
			return nil, ErrNoModel
		}
	} else {
		e = r.versions[version]
		if e == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownVersion, version)
		}
		if e.retiring {
			return nil, fmt.Errorf("%w: %q", ErrRetiring, version)
		}
	}
	e.refs++
	return &Handle{r: r, e: e}, nil
}

// Retire drains and removes a non-current version: new acquires fail
// immediately, and the call blocks until every outstanding handle is
// released. The current version cannot be retired — publish a successor
// first.
func (r *Registry) Retire(version string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.versions[version]
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownVersion, version)
	}
	if e == r.current {
		return fmt.Errorf("registry: cannot retire current version %q (publish a successor first)", version)
	}
	e.retiring = true
	for e.refs > 0 {
		r.drained.Wait()
	}
	delete(r.versions, version)
	for i, v := range r.order {
		if v == version {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return nil
}

// CurrentVersion returns the current version name ("" when empty).
func (r *Registry) CurrentVersion() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.current == nil {
		return ""
	}
	return r.current.version
}

// VersionInfo is one version's row in a listing.
type VersionInfo struct {
	Version string `json:"version"`
	Current bool   `json:"current"`
	// Refs is the number of outstanding handles (in-flight requests or
	// batches leasing the version).
	Refs int `json:"refs"`
	// Retiring marks a version draining toward removal.
	Retiring bool `json:"retiring,omitempty"`
	// CompileMillis is the publish-time f32 lane build duration in
	// milliseconds (0 when the version has no f32 form).
	CompileMillis float64 `json:"compile_millis"`
}

// Versions lists every live version in publish order.
func (r *Registry) Versions() []VersionInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]VersionInfo, 0, len(r.order))
	for _, v := range r.order {
		e := r.versions[v]
		out = append(out, VersionInfo{
			Version:       e.version,
			Current:       e == r.current,
			Refs:          e.refs,
			Retiring:      e.retiring,
			CompileMillis: e.compileMillis,
		})
	}
	return out
}
