package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stencilmart/internal/core"
	"stencilmart/internal/stencil"
)

// hardenedServer wraps the shared trained framework in a fresh Server so
// fault counters and prediction stubs never leak between tests.
func hardenedServer(t *testing.T, opts Options) *Server {
	t.Helper()
	fw := testServer(t).fw
	s, err := NewWithOptions(fw, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// serialStub adapts a one-request prediction double to the batch predict
// signature, preserving the old stub style of these tests.
func serialStub(fn func(archName string, st stencil.Stencil) (*core.ServePrediction, error)) predictBatchFn {
	return func(fw *core.Framework, ctx context.Context, reqs []core.ServeRequest) []core.ServeOutcome {
		outs := make([]core.ServeOutcome, len(reqs))
		for i, r := range reqs {
			p, err := fn(r.GPU, r.Stencil)
			outs[i] = core.ServeOutcome{Prediction: p, Err: err}
		}
		return outs
	}
}

// statsOf fetches and decodes /statsz.
func statsOf(t *testing.T, h http.Handler) StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz status %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPredictPanicRecovered: a panicking prediction becomes a 500 JSON
// error and a counted fault, and the server keeps serving afterwards.
func TestPredictPanicRecovered(t *testing.T) {
	s := hardenedServer(t, Options{})
	s.setPredict(serialStub(func(string, stencil.Stencil) (*core.ServePrediction, error) {
		panic("poisoned checkpoint")
	}))
	h := s.Handler()

	rec, out := postPredict(t, h, `{"stencil":"star2d1r","gpu":"V100"}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking predict gave %d (%v), want 500", rec.Code, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "internal error") {
		t.Fatalf("error body %v does not say internal error", out)
	}

	// The server survived: health and stats still answer, and the panic
	// was counted.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("healthz after panic gave %d", rec2.Code)
	}
	st := statsOf(t, h)
	if st.Faults.PanicsRecovered != 1 {
		t.Fatalf("faults %+v, want exactly one recovered panic", st.Faults)
	}

	// Un-poison the server and predict for real — no lasting damage.
	s.setPredict(nil)
	rec3, out3 := postPredict(t, h, `{"stencil":"star2d1r","gpu":"V100"}`)
	if rec3.Code != http.StatusOK {
		t.Fatalf("predict after recovery gave %d (%v)", rec3.Code, out3)
	}
}

// TestPredictLoadShed: with the in-flight cap at 1, a second concurrent
// request is refused with 503 + Retry-After instead of queueing, and the
// shed is counted.
func TestPredictLoadShed(t *testing.T) {
	s := hardenedServer(t, Options{MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.setPredict(serialStub(func(arch string, st stencil.Stencil) (*core.ServePrediction, error) {
		entered <- struct{}{}
		<-release
		return s.fw.ServePredict(arch, st)
	}))
	h := s.Handler()

	firstDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"stencil":"star2d1r","gpu":"V100"}`))
		h.ServeHTTP(rec, req)
		firstDone <- rec.Code
	}()
	<-entered // first request now holds the only in-flight slot

	rec, out := postPredict(t, h, `{"stencil":"star2d1r","gpu":"V100"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request at capacity gave %d (%v), want 503", rec.Code, out)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response carries no Retry-After")
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("admitted request gave %d", code)
	}
	if st := statsOf(t, h); st.Faults.LoadShed != 1 {
		t.Fatalf("faults %+v, want exactly one shed request", st.Faults)
	}
}

// TestPredictOversizeBody: a body past MaxRequestBytes gets 413 with a
// JSON error, counted, without disturbing the other fault counters.
func TestPredictOversizeBody(t *testing.T) {
	s := hardenedServer(t, Options{})
	h := s.Handler()
	body := `{"stencil":"` + strings.Repeat("x", MaxRequestBytes) + `","gpu":"V100"}`
	rec, out := postPredict(t, h, body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body gave %d (%v), want 413", rec.Code, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "bytes") {
		t.Fatalf("413 body %v does not state the limit", out)
	}
	st := statsOf(t, h)
	if st.Faults != (FaultSnapshot{OversizeRequests: 1}) {
		t.Fatalf("faults %+v, want only one oversize request", st.Faults)
	}
}

// TestPredictMethodNotAllowed: every non-POST verb on /predict gets a
// JSON 405 rather than a default text error.
func TestPredictMethodNotAllowed(t *testing.T) {
	h := hardenedServer(t, Options{}).Handler()
	for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, "/predict", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s /predict gave %d, want 405", method, rec.Code)
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s /predict body %q is not JSON: %v", method, rec.Body.String(), err)
		}
		if _, ok := out["error"]; !ok {
			t.Fatalf("%s /predict body %v has no error field", method, out)
		}
	}
}
