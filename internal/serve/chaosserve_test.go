package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"stencilmart/internal/core"
	"stencilmart/internal/fault"
	"stencilmart/internal/stencil"
	"stencilmart/internal/testutil"
)

// serialWant encodes the fault-free f64 ground truth for each request
// body, exactly as the handler encodes it (json.Encoder, trailing
// newline).
func serialWant(t *testing.T, bodies []string) map[string][]byte {
	t.Helper()
	fw := testServer(t).fw
	want := make(map[string][]byte, len(bodies))
	for _, body := range bodies {
		var req PredictRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		st, err := stencilFromRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := fw.ServePredict(req.GPU, st)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(pred); err != nil {
			t.Fatal(err)
		}
		want[body] = buf.Bytes()
	}
	return want
}

// TestChaosServeDifferential is the serving tier's chaos acceptance: a
// real HTTP server under ≥10% injected faults — latency spikes,
// connection resets, mid-body truncation, and a scoring-panic burst —
// where every client retries until it completes, every completed
// response must be bitwise-identical to the fault-free run, and the
// failure count stays bounded by what was injected. The scoring burst is
// sized below the breaker threshold, so this run also proves breakers
// don't trip on sub-threshold fault stretches.
func TestChaosServeDifferential(t *testing.T) {
	fw := testServer(t).fw
	bodies := diffBodies(t)
	want := serialWant(t, bodies)
	const batchSize = 8
	const maxAttempts = 10

	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("GOMAXPROCS%d", procs), func(t *testing.T) {
			testutil.WithGOMAXPROCS(t, procs, func() {
				inj := fault.NewHTTPInjector(fault.HTTPConfig{
					Seed:            11,
					LatencyRate:     0.06,
					ResetRate:       0.05,
					TruncateRate:    0.05,
					LatencySpike:    time.Millisecond,
					ScorePanicAfter: 2,
					ScorePanicBurst: 2, // below DefaultBreakerThreshold: no trip
					ScorePanicSite:  "f64/v1",
				})
				s, err := NewWithOptions(fw, Options{
					BatchWindow: 200 * time.Microsecond,
					BatchSize:   batchSize,
					MaxInFlight: 4 * len(bodies),
					ScoreFaults: inj,
					Middleware:  inj.Middleware,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				srv := httptest.NewServer(s.Handler())
				defer srv.Close()

				type report struct {
					body string
					bad  int
					err  error
				}
				reports := make(chan report, len(bodies))
				var wg sync.WaitGroup
				for _, body := range bodies {
					wg.Add(1)
					go func(body string) {
						defer wg.Done()
						rep := report{body: body}
						defer func() { reports <- rep }()
						for attempt := 0; attempt < maxAttempts; attempt++ {
							resp, err := srv.Client().Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
							if err != nil {
								rep.bad++
								continue
							}
							data, rerr := io.ReadAll(resp.Body)
							resp.Body.Close()
							if rerr != nil || resp.StatusCode != http.StatusOK {
								rep.bad++
								continue
							}
							// A completed response must be bitwise-identical
							// to the fault-free run — chaos may fail
							// requests, never corrupt them.
							if !bytes.Equal(data, want[body]) {
								rep.err = fmt.Errorf("completed response diverges from fault-free run:\nwant %q\ngot  %q", want[body], data)
							}
							return
						}
						rep.err = fmt.Errorf("request never completed in %d attempts", maxAttempts)
					}(body)
				}
				wg.Wait()
				close(reports)

				totalBad := 0
				for rep := range reports {
					if rep.err != nil {
						t.Errorf("%s: %v", rep.body, rep.err)
					}
					totalBad += rep.bad
				}

				st := inj.Stats()
				if st.Total() == 0 {
					t.Fatal("chaos run injected no faults")
				}
				// ≥10% of attempts faulted — the suite actually ran under
				// chaos, not around it.
				if st.Total()*10 < st.Requests {
					t.Fatalf("injected %d faults over %d requests, below the 10%% floor", st.Total(), st.Requests)
				}
				if st.ScorePanics != 2 {
					t.Fatalf("score panics %d, want the full burst of 2", st.ScorePanics)
				}
				// Error budget: every failed attempt traces to an injected
				// fault — a reset, a truncation, or a scoring panic that
				// failed at most one whole batch.
				bound := int(st.Resets+st.Truncates) + int(st.ScorePanics)*batchSize
				if totalBad > bound {
					t.Fatalf("%d failed attempts exceed the injected-fault bound %d (stats %+v)", totalBad, bound, st)
				}
				// Sub-threshold faults must not trip breakers or degrade
				// anything.
				for _, b := range s.breakers.snapshot() {
					if b.State != "closed" || b.Trips != 0 {
						t.Fatalf("breaker %s/%s = %+v, want closed and untripped", b.Version, b.Lane, b)
					}
				}
				if d := s.degraded.Load(); d != 0 {
					t.Fatalf("%d degraded responses in a sub-threshold run", d)
				}
			})
		})
	}
}

// TestBreakerTripFallbackRecovery is the f32 breaker drill: a
// deterministic burst of scoring panics on (v1, f32) trips the breaker
// after exactly DefaultBreakerThreshold consecutive failures, every
// affected request is served by the same version's f64 lane with zero
// failures (bodies bitwise-identical to the fault-free f64 run, degraded
// headers set), the open breaker short-circuits, and after the cooldown
// a half-open probe restores the f32 lane.
func TestBreakerTripFallbackRecovery(t *testing.T) {
	fw := testServer(t).fw
	const cooldown = 100 * time.Millisecond
	inj := fault.NewHTTPInjector(fault.HTTPConfig{
		Seed:            5,
		ScorePanicAfter: 1,
		ScorePanicBurst: 3,
		ScorePanicSite:  "f32/v1",
	})
	s, err := NewWithOptions(fw, Options{
		BatchWindow:     -1,
		BreakerCooldown: cooldown,
		ScoreFaults:     inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	const body = `{"stencil":"star2d1r","gpu":"V100"}`
	post := func(lane string) (*httptest.ResponseRecorder, []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/predict?lane="+lane, strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec, rec.Body.Bytes()
	}

	// Fault-free baselines: f64 first (site f64/v1 is never targeted),
	// then the f32 burst site's call 0, which is clean by construction.
	recF64, wantF64 := post("f64")
	if recF64.Code != http.StatusOK {
		t.Fatalf("f64 baseline gave %d: %s", recF64.Code, wantF64)
	}
	recF32, wantF32 := post("f32")
	if recF32.Code != http.StatusOK {
		t.Fatalf("f32 baseline gave %d: %s", recF32.Code, wantF32)
	}
	if got := recF32.Header().Get("X-Serve-Lane"); got != "f32" {
		t.Fatalf("f32 baseline served by lane %q", got)
	}

	// The burst: three consecutive f32 scoring panics. Every request must
	// still succeed — served degraded by the f64 fallback, bitwise equal
	// to the fault-free f64 run.
	for i := 0; i < 3; i++ {
		rec, got := post("f32")
		if rec.Code != http.StatusOK {
			t.Fatalf("burst request %d failed with %d: %s — breaker fallback must keep requests whole", i, rec.Code, got)
		}
		if rec.Header().Get("X-Serve-Degraded") != "true" || rec.Header().Get("X-Serve-Lane") != "f64" {
			t.Fatalf("burst request %d headers lane=%q degraded=%q, want f64 degraded",
				i, rec.Header().Get("X-Serve-Lane"), rec.Header().Get("X-Serve-Degraded"))
		}
		testutil.AssertSameBytes(t, fmt.Sprintf("degraded body %d", i), wantF64, got)
	}

	// The third failure tripped the breaker: now open, short-circuiting
	// straight to the fallback without consulting the f32 lane.
	rec, got := post("f32")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Serve-Degraded") != "true" {
		t.Fatalf("short-circuit request gave %d degraded=%q", rec.Code, rec.Header().Get("X-Serve-Degraded"))
	}
	testutil.AssertSameBytes(t, "short-circuit body", wantF64, got)

	br := breakerByKey(t, s, "v1", LaneF32)
	if br.State != "open" || br.Trips != 1 || br.ShortCircuits != 1 || br.FallbackServed != 4 {
		t.Fatalf("post-trip breaker %+v, want open with 1 trip, 1 short-circuit, 4 fallback-served", br)
	}
	if d := s.degraded.Load(); d != 4 {
		t.Fatalf("degraded counter %d, want 4", d)
	}

	// Cooldown elapses; the next request is the half-open probe. The
	// burst is exhausted, so the probe succeeds and closes the breaker —
	// the f32 lane is back, bitwise where it left off.
	time.Sleep(cooldown + 20*time.Millisecond)
	rec, got = post("f32")
	if rec.Code != http.StatusOK {
		t.Fatalf("probe request gave %d: %s", rec.Code, got)
	}
	if rec.Header().Get("X-Serve-Lane") != "f32" || rec.Header().Get("X-Serve-Degraded") != "" {
		t.Fatalf("recovered request headers lane=%q degraded=%q, want clean f32",
			rec.Header().Get("X-Serve-Lane"), rec.Header().Get("X-Serve-Degraded"))
	}
	testutil.AssertSameBytes(t, "recovered body", wantF32, got)

	br = breakerByKey(t, s, "v1", LaneF32)
	if br.State != "closed" || br.Probes != 1 {
		t.Fatalf("post-recovery breaker %+v, want closed after 1 probe", br)
	}
	if st := statsOf(t, h); st.Faults.DegradedRequests != 4 || st.Faults.PanicsRecovered != 3 {
		t.Fatalf("faults %+v, want 4 degraded and 3 recovered panics", st.Faults)
	}
}

// breakerByKey finds one breaker's snapshot on the server.
func breakerByKey(t *testing.T, s *Server, version string, lane Lane) BreakerSnapshot {
	t.Helper()
	for _, b := range s.breakers.snapshot() {
		if b.Version == version && b.Lane == lane {
			return b
		}
	}
	t.Fatalf("no breaker for (%s, %s) in %+v", version, lane, s.breakers.snapshot())
	return BreakerSnapshot{}
}

// TestBreakerVersionFallbackAndRetire drills the cross-version fallback:
// with v2 current and its f64 lane poisoned, requests degrade to v1 with
// zero failures; once v1 retires mid-degradation the fallback walk finds
// nothing — requests fail bounded (503, never a torn read of a retired
// framework) — and after the cooldown a half-open probe restores v2.
func TestBreakerVersionFallbackAndRetire(t *testing.T) {
	fw := testServer(t).fw
	ckpt := filepath.Join(t.TempDir(), "model.ckpt")
	if err := fw.SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}

	const cooldown = 100 * time.Millisecond
	s, err := NewWithOptions(fw, Options{BatchWindow: -1, BreakerCooldown: cooldown})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// v2 is a distinct framework loaded from the checkpoint; requests
	// follow the current pointer to it.
	if _, err := s.Registry().PublishFile(ckpt); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Poison v2's scoring only: v1 (the server's own framework) scores
	// for real, so the version-fallback path stays healthy.
	s.setPredict(func(target *core.Framework, ctx context.Context, reqs []core.ServeRequest) []core.ServeOutcome {
		if target != fw {
			panic("poisoned v2 checkpoint")
		}
		return target.ServePredictBatch(ctx, reqs)
	})

	const body = `{"stencil":"star2d1r","gpu":"V100"}`
	post := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec
	}

	// Three consecutive v2 failures: each request degrades to v1, the
	// breaker trips on the third.
	for i := 0; i < 3; i++ {
		rec := post()
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d during v2 poisoning gave %d: %s", i, rec.Code, rec.Body.String())
		}
		if rec.Header().Get("X-Serve-Model") != "v1" || rec.Header().Get("X-Serve-Degraded") != "true" {
			t.Fatalf("request %d served by %q degraded=%q, want degraded v1",
				i, rec.Header().Get("X-Serve-Model"), rec.Header().Get("X-Serve-Degraded"))
		}
	}
	if br := breakerByKey(t, s, "v2", LaneF64); br.State != "open" {
		t.Fatalf("v2 breaker %+v, want open", br)
	}

	// Retire v1 while the breaker is redirecting to it (no refs are held
	// between requests, so Retire completes). The fallback walk must not
	// resurrect it: with no healthy fallback left, requests fail bounded.
	if err := s.Registry().Retire("v1"); err != nil {
		t.Fatal(err)
	}
	rec := post()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request with retired fallback gave %d: %s, want 503", rec.Code, rec.Body.String())
	}

	// Cooldown elapses; un-poison v2 and let the half-open probe restore
	// it.
	s.setPredict(nil)
	time.Sleep(cooldown + 20*time.Millisecond)
	rec = post()
	if rec.Code != http.StatusOK || rec.Header().Get("X-Serve-Model") != "v2" || rec.Header().Get("X-Serve-Degraded") != "" {
		t.Fatalf("post-recovery request gave %d model=%q degraded=%q, want clean v2",
			rec.Code, rec.Header().Get("X-Serve-Model"), rec.Header().Get("X-Serve-Degraded"))
	}
	if br := breakerByKey(t, s, "v2", LaneF64); br.State != "closed" {
		t.Fatalf("v2 breaker after recovery %+v, want closed", br)
	}
}

// TestDeadlineExpiredRejectedAtAdmission: a request arriving with its
// deadline budget already spent is answered 504 before it takes a batch
// slot or a model lease; malformed budgets are 400s.
func TestDeadlineExpiredRejectedAtAdmission(t *testing.T) {
	s := hardenedServer(t, Options{BatchWindow: -1})
	h := s.Handler()

	post := func(deadline string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"stencil":"star2d1r","gpu":"V100"}`))
		req.Header.Set("X-Deadline-Millis", deadline)
		h.ServeHTTP(rec, req)
		return rec
	}

	for _, expired := range []string{"0", "-25"} {
		rec := post(expired)
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("X-Deadline-Millis=%s gave %d, want 504", expired, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("504 content type %q", ct)
		}
	}
	if rec := post("soon"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed deadline gave %d, want 400", rec.Code)
	}

	// Nothing reached the coalescer, and the expiries were counted.
	if st := s.co.Stats(); st.Requests != 0 || st.Batches != 0 {
		t.Fatalf("batch stats %+v, want zero admitted requests", st)
	}
	stats := statsOf(t, h)
	if got := stats.Endpoints["predict"].DeadlineExpired; got != 2 {
		t.Fatalf("deadline_expired = %d, want 2", got)
	}

	// A generous budget serves normally.
	if rec := post("30000"); rec.Code != http.StatusOK {
		t.Fatalf("live deadline gave %d: %s", rec.Code, rec.Body.String())
	}
}

// TestDeadlineExpiresInQueue: a request whose budget runs out while its
// batch waits behind a slow one is rejected by the scorer without a
// model call — the model lease it held is released and the prediction
// path never sees its GPU.
func TestDeadlineExpiresInQueue(t *testing.T) {
	s := hardenedServer(t, Options{BatchWindow: -1, Timeout: 10 * time.Second})
	var mu sync.Mutex
	seen := map[string]bool{}
	release := make(chan struct{})
	var once sync.Once
	s.setPredict(serialStub(func(arch string, st stencil.Stencil) (*core.ServePrediction, error) {
		mu.Lock()
		seen[arch] = true
		mu.Unlock()
		once.Do(func() { <-release })
		return s.fw.ServePredict(arch, st)
	}))
	h := s.Handler()

	// First request blocks the scoring lane.
	firstDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"stencil":"star2d1r","gpu":"V100"}`))
		h.ServeHTTP(rec, req)
		firstDone <- rec.Code
	}()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return seen["V100"]
	})

	// Second request enters the queue with a 50ms budget, which expires
	// while the lane is blocked.
	secondDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"stencil":"star2d1r","gpu":"P100"}`))
		req.Header.Set("X-Deadline-Millis", "50")
		h.ServeHTTP(rec, req)
		secondDone <- rec
	}()

	rec := <-secondDone // its deadline fires while queued
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("queued request past deadline gave %d: %s, want 504", rec.Code, rec.Body.String())
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("blocking request gave %d", code)
	}

	// Let the scorer drain the second batch, then prove it skipped the
	// expired job: the predict stub never saw P100.
	waitFor(t, func() bool { return s.co.Stats().Batches >= 2 })
	mu.Lock()
	sawP100 := seen["P100"]
	mu.Unlock()
	if sawP100 {
		t.Fatal("expired request was scored anyway — it must be rejected before the model call")
	}
	if got := statsOf(t, h).Endpoints["predict"].DeadlineExpired; got != 1 {
		t.Fatalf("deadline_expired = %d, want 1", got)
	}
}

// waitFor polls cond until it holds or a generous timeout trips.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTimeoutBodyContentType: the /predict timeout response must carry
// the JSON error with an application/json Content-Type — TimeoutHandler
// writes the body without one, and Go's sniffer would otherwise serve it
// as text/plain.
func TestTimeoutBodyContentType(t *testing.T) {
	s := hardenedServer(t, Options{Timeout: 30 * time.Millisecond, BatchWindow: -1})
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	s.setPredict(serialStub(func(arch string, st stencil.Stencil) (*core.ServePrediction, error) {
		<-release
		return nil, fmt.Errorf("late")
	}))
	h := s.Handler()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"stencil":"star2d1r","gpu":"V100"}`))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out predict gave %d, want 503", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("timeout response Content-Type %q, want application/json", ct)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("timeout body %q is not JSON: %v", rec.Body.String(), err)
	}
	if _, ok := out["error"]; !ok {
		t.Fatalf("timeout body %v has no error field", out)
	}
}
