package serve

import (
	"sync"
	"time"
)

// DefaultBreakerThreshold is how many consecutive scoring failures trip a
// lane's breaker.
const DefaultBreakerThreshold = 3

// DefaultBreakerCooldown is how long a tripped breaker stays open before
// a half-open probe tests the lane again.
const DefaultBreakerCooldown = 2 * time.Second

// BreakerState is one breaker's position in the classic three-state
// machine: closed (healthy, traffic flows), open (tripped, traffic
// reroutes to a fallback), half-open (one probe in flight testing
// recovery).
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerKey identifies one breaker: a (model version, inference lane)
// pair. One bad f32 compile trips only (vN, f32); the same version's f64
// reference lane and every other version keep their own health.
type breakerKey struct {
	version string
	lane    Lane
}

// breaker is one key's state. All fields are guarded by the owning
// breakerSet's mutex.
type breaker struct {
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool

	trips          uint64
	probes         uint64
	shortCircuits  uint64
	fallbackServed uint64
}

// breakerSet owns every breaker in the server, keyed per (version, lane).
// Breakers are created lazily on first routing decision; health queries
// for keys that never carried traffic report closed without creating
// state.
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	m     map[breakerKey]*breaker
	order []breakerKey // first-seen order, for stable snapshots
}

func newBreakerSet(threshold int, cooldown time.Duration, now func() time.Time) *breakerSet {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		m:         make(map[breakerKey]*breaker),
	}
}

// get returns the key's breaker, creating it closed. Callers hold b.mu.
func (b *breakerSet) get(k breakerKey) *breaker {
	br := b.m[k]
	if br == nil {
		br = &breaker{}
		b.m[k] = br
		b.order = append(b.order, k)
	}
	return br
}

// route decides whether traffic for k may ride its primary scoring path.
// allow=false means the caller must go straight to a fallback (the
// breaker is open, or half-open with the probe slot taken). probe=true
// marks the single half-open probe: its result closes or reopens the
// breaker.
func (b *breakerSet) route(k breakerKey) (allow, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.get(k)
	switch br.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(br.openedAt) >= b.cooldown {
			br.state = BreakerHalfOpen
			br.probing = true
			br.probes++
			return true, true
		}
	case BreakerHalfOpen:
		if !br.probing {
			br.probing = true
			br.probes++
			return true, true
		}
	}
	br.shortCircuits++
	return false, false
}

// result records a primary-path scoring outcome for k. Only genuine
// scoring faults (panics, mis-shaped results) count as failures; the
// caller must not report deadline expiries here — a slow client is not a
// sick lane.
func (b *breakerSet) result(k breakerKey, probe, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.get(k)
	if failed {
		if probe || br.state == BreakerHalfOpen {
			// Probe failed: straight back to open, restart the cooldown.
			br.state = BreakerOpen
			br.openedAt = b.now()
			br.probing = false
			br.trips++
			return
		}
		br.consecutive++
		if br.state == BreakerClosed && br.consecutive >= b.threshold {
			br.state = BreakerOpen
			br.openedAt = b.now()
			br.trips++
		}
		return
	}
	if probe || br.state == BreakerHalfOpen {
		br.probing = false
	}
	br.state = BreakerClosed
	br.consecutive = 0
}

// healthy reports whether k's primary path is fully closed — the bar a
// version/lane must clear to serve as a fallback target. Keys with no
// recorded traffic are healthy; the query never creates state.
func (b *breakerSet) healthy(k breakerKey) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[k]
	return br == nil || br.state == BreakerClosed
}

// markFallback counts requests served degraded on k's behalf while its
// breaker rerouted them.
func (b *breakerSet) markFallback(k breakerKey, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.get(k).fallbackServed += uint64(n)
}

// BreakerSnapshot is one breaker's state on /statsz and /modelz.
type BreakerSnapshot struct {
	Version string `json:"version"`
	Lane    Lane   `json:"lane"`
	State   string `json:"state"`
	// ConsecutiveFailures is the current run of primary-path failures
	// (resets on success; frozen at the threshold while open).
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Trips counts closed/half-open -> open transitions.
	Trips uint64 `json:"trips"`
	// Probes counts half-open probe attempts.
	Probes uint64 `json:"probes"`
	// ShortCircuits counts routing decisions that bypassed the primary
	// path while the breaker was open.
	ShortCircuits uint64 `json:"short_circuits"`
	// FallbackServed counts requests answered by a fallback lane/version
	// while this breaker rerouted them.
	FallbackServed uint64 `json:"fallback_served"`
}

// snapshot lists every breaker that has carried traffic, in first-seen
// order.
func (b *breakerSet) snapshot() []BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerSnapshot, 0, len(b.order))
	for _, k := range b.order {
		br := b.m[k]
		out = append(out, BreakerSnapshot{
			Version:             k.version,
			Lane:                k.lane,
			State:               br.state.String(),
			ConsecutiveFailures: br.consecutive,
			Trips:               br.trips,
			Probes:              br.probes,
			ShortCircuits:       br.shortCircuits,
			FallbackServed:      br.fallbackServed,
		})
	}
	return out
}
