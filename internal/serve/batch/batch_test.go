package batch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTimer fires only when the test says so.
type fakeTimer struct {
	ch      chan time.Time
	stopped atomic.Bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }
func (t *fakeTimer) Stop() bool          { return !t.stopped.Swap(true) }
func (t *fakeTimer) fire()               { t.ch <- time.Time{} }

// fakeClock hands every created timer to the test through a channel, so
// the test knows exactly when the collector has started a window (the
// timer is created only after the batch's first request was consumed).
type fakeClock struct {
	timers chan *fakeTimer
}

func newFakeClock() *fakeClock { return &fakeClock{timers: make(chan *fakeTimer, 16)} }

func (c *fakeClock) NewTimer(d time.Duration) Timer {
	t := &fakeTimer{ch: make(chan time.Time, 1)}
	c.timers <- t
	return t
}

func (c *fakeClock) next(t *testing.T) *fakeTimer {
	t.Helper()
	select {
	case ft := <-c.timers:
		return ft
	case <-time.After(10 * time.Second):
		t.Fatal("collector never created a window timer")
		return nil
	}
}

// echoScore doubles every request; the canonical correct-fan-out oracle.
func echoScore(reqs []int) []Outcome[int] {
	outs := make([]Outcome[int], len(reqs))
	for i, q := range reqs {
		outs[i] = Outcome[int]{Value: q * 2}
	}
	return outs
}

// doAsync submits req on a fresh goroutine and returns a channel with the
// result.
func doAsync(c *Coalescer[int, int], ctx context.Context, req int) chan Outcome[int] {
	ch := make(chan Outcome[int], 1)
	go func() {
		v, err := c.Do(ctx, req)
		ch <- Outcome[int]{Value: v, Err: err}
	}()
	return ch
}

func await(t *testing.T, ch chan Outcome[int]) Outcome[int] {
	t.Helper()
	select {
	case out := <-ch:
		return out
	case <-time.After(10 * time.Second):
		t.Fatal("request never completed")
		return Outcome[int]{}
	}
}

// TestWindowExpiryFlushesPartialBatch: one waiting request, window fires,
// the size-1 batch scores — deterministically, because the fake timer is
// created only after the request is collected and fires only when told.
func TestWindowExpiryFlushesPartialBatch(t *testing.T) {
	clock := newFakeClock()
	c := New(Options[int]{Window: time.Hour, MaxBatch: 8, Clock: clock}, echoScore)
	defer c.Close()

	res := doAsync(c, context.Background(), 21)
	clock.next(t).fire()
	if out := await(t, res); out.Err != nil || out.Value != 42 {
		t.Fatalf("got (%d, %v), want (42, nil)", out.Value, out.Err)
	}
	st := c.Stats()
	if st.Batches != 1 || st.Requests != 1 || st.WindowFlushes != 1 || st.SizeFlushes != 0 {
		t.Fatalf("stats %+v, want exactly one window-flushed batch of 1", st)
	}
}

// TestWindowCoalescesConcurrentRequests: several requests submitted while
// the window is open all complete with their own results; every flush is
// a window flush (the batch never fills).
func TestWindowCoalescesConcurrentRequests(t *testing.T) {
	clock := newFakeClock()
	c := New(Options[int]{Window: time.Hour, MaxBatch: 8, Clock: clock}, echoScore)
	defer c.Close()

	const n = 5
	results := make([]chan Outcome[int], n)
	for i := 0; i < n; i++ {
		results[i] = doAsync(c, context.Background(), i)
	}
	// Fire window timers until every request has flushed through; the
	// collector creates a fresh timer per batch.
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			out := await(t, results[i])
			if out.Err != nil || out.Value != i*2 {
				t.Errorf("request %d got (%d, %v), want (%d, nil)", i, out.Value, out.Err, i*2)
			}
		}
		close(done)
	}()
	for {
		select {
		case ft := <-clock.timers:
			ft.fire()
		case <-done:
			st := c.Stats()
			if st.Requests != n || st.SizeFlushes != 0 {
				t.Fatalf("stats %+v, want %d requests all window-flushed", st, n)
			}
			return
		case <-time.After(10 * time.Second):
			t.Fatal("requests never drained")
		}
	}
}

// TestMaxBatchSaturationFlush: exactly MaxBatch requests form exactly one
// batch without the window ever firing.
func TestMaxBatchSaturationFlush(t *testing.T) {
	clock := newFakeClock()
	var batchSizes []int
	var mu sync.Mutex
	score := func(reqs []int) []Outcome[int] {
		mu.Lock()
		batchSizes = append(batchSizes, len(reqs))
		mu.Unlock()
		return echoScore(reqs)
	}
	c := New(Options[int]{Window: time.Hour, MaxBatch: 3, Clock: clock}, score)
	defer c.Close()

	results := make([]chan Outcome[int], 3)
	for i := range results {
		results[i] = doAsync(c, context.Background(), i+10)
	}
	for i, res := range results {
		if out := await(t, res); out.Err != nil || out.Value != (i+10)*2 {
			t.Fatalf("request %d got (%d, %v)", i, out.Value, out.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batchSizes) != 1 || batchSizes[0] != 3 {
		t.Fatalf("batches %v, want one batch of 3", batchSizes)
	}
	st := c.Stats()
	if st.SizeFlushes != 1 || st.WindowFlushes != 0 || st.MaxBatch != 3 {
		t.Fatalf("stats %+v, want one size flush of 3", st)
	}
}

// TestCancellationMidBatch: a waiter that cancels while its batch is
// still collecting gets ctx.Err immediately; its batchmate is scored
// normally and the lane keeps serving.
func TestCancellationMidBatch(t *testing.T) {
	clock := newFakeClock()
	c := New(Options[int]{Window: time.Hour, MaxBatch: 2, Clock: clock}, echoScore)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	resA := doAsync(c, ctx, 1)
	clock.next(t) // A is collected; its batch is waiting for a mate
	cancel()
	if out := await(t, resA); !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("cancelled waiter got (%d, %v), want context.Canceled", out.Value, out.Err)
	}

	// B joins A's still-open batch and saturates it; B must succeed even
	// though its batchmate abandoned the wait.
	resB := doAsync(c, context.Background(), 2)
	if out := await(t, resB); out.Err != nil || out.Value != 4 {
		t.Fatalf("batchmate of cancelled waiter got (%d, %v), want (4, nil)", out.Value, out.Err)
	}

	// The lane survives for the next batch.
	resC := doAsync(c, context.Background(), 3)
	clock.next(t).fire()
	if out := await(t, resC); out.Err != nil || out.Value != 6 {
		t.Fatalf("post-cancellation request got (%d, %v), want (6, nil)", out.Value, out.Err)
	}
	if st := c.Stats(); st.Requests != 3 {
		t.Fatalf("stats %+v: the cancelled request must still have been scored", st)
	}
}

// TestScorePanicFailsBatchNotLane: a panicking score function fails every
// waiter in its batch with an error naming the panic, and the lane keeps
// scoring subsequent batches.
func TestScorePanicFailsBatchNotLane(t *testing.T) {
	clock := newFakeClock()
	score := func(reqs []int) []Outcome[int] {
		for _, q := range reqs {
			if q < 0 {
				panic(fmt.Sprintf("poisoned request %d", q))
			}
		}
		return echoScore(reqs)
	}
	c := New(Options[int]{Window: time.Hour, MaxBatch: 2, Clock: clock}, score)
	defer c.Close()

	resA := doAsync(c, context.Background(), -1)
	clock.next(t)
	resB := doAsync(c, context.Background(), 7) // saturates the batch
	for name, res := range map[string]chan Outcome[int]{"poisoned": resA, "mate": resB} {
		out := await(t, res)
		if out.Err == nil || !strings.Contains(out.Err.Error(), "panic") {
			t.Fatalf("%s request got (%d, %v), want a panic error", name, out.Value, out.Err)
		}
	}

	resC := doAsync(c, context.Background(), 5)
	clock.next(t).fire()
	if out := await(t, resC); out.Err != nil || out.Value != 10 {
		t.Fatalf("lane died after a score panic: (%d, %v)", out.Value, out.Err)
	}
}

// TestMisshapedScoreResult: a score function returning the wrong number
// of outcomes fails the batch with a descriptive error instead of
// panicking the lane or cross-wiring results.
func TestMisshapedScoreResult(t *testing.T) {
	clock := newFakeClock()
	c := New(Options[int]{Window: time.Hour, MaxBatch: 1, Clock: clock},
		func(reqs []int) []Outcome[int] { return nil })
	defer c.Close()
	_, err := c.Do(context.Background(), 1)
	if err == nil || !strings.Contains(err.Error(), "0 outcomes for 1 requests") {
		t.Fatalf("err %v, want mis-shape error", err)
	}
}

// TestCloseDrainsPendingBatch: close while a partial batch waits on its
// window — the batch scores anyway (graceful drain) and later Do calls
// fail fast with ErrClosed, invoking OnDrop.
func TestCloseDrainsPendingBatch(t *testing.T) {
	clock := newFakeClock()
	var dropped atomic.Uint64
	c := New(Options[int]{
		Window: time.Hour, MaxBatch: 8, Clock: clock,
		OnDrop: func(int) { dropped.Add(1) },
	}, echoScore)

	res := doAsync(c, context.Background(), 9)
	clock.next(t) // request collected, window open
	c.Close()
	if out := await(t, res); out.Err != nil || out.Value != 18 {
		t.Fatalf("in-flight request got (%d, %v) at close, want graceful (18, nil)", out.Value, out.Err)
	}
	st := c.Stats()
	if st.CloseFlushes != 1 {
		t.Fatalf("stats %+v, want one close flush", st)
	}

	if _, err := c.Do(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close gave %v, want ErrClosed", err)
	}
	if dropped.Load() != 1 {
		t.Fatalf("dropped %d, want 1 (the post-close request)", dropped.Load())
	}
}

// TestNoWaitMode: Window <= 0 never blocks on a timer — every request
// completes with only what was already queued as its batch.
func TestNoWaitMode(t *testing.T) {
	c := New(Options[int]{Window: 0, MaxBatch: 8}, echoScore)
	defer c.Close()
	for i := 0; i < 10; i++ {
		v, err := c.Do(context.Background(), i)
		if err != nil || v != i*2 {
			t.Fatalf("request %d got (%d, %v)", i, v, err)
		}
	}
	if st := c.Stats(); st.Requests != 10 {
		t.Fatalf("stats %+v, want 10 requests", st)
	}
}

// TestSerialLane: MaxBatch 1 degenerates to one-at-a-time scoring — the
// single-mutex baseline mode the bench compares against.
func TestSerialLane(t *testing.T) {
	c := New(Options[int]{MaxBatch: 1}, echoScore)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(context.Background(), i)
			if err != nil || v != i*2 {
				t.Errorf("request %d got (%d, %v)", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Requests != 20 || st.MaxBatch != 1 {
		t.Fatalf("stats %+v, want 20 size-1 batches", st)
	}
}

// TestStressManyClients hammers a real-clock coalescer from many
// goroutines; under -race this is the suite's interleaving probe. Every
// response must belong to its own request — no cross-wiring, no losses.
func TestStressManyClients(t *testing.T) {
	score := func(reqs []int) []Outcome[int] {
		time.Sleep(50 * time.Microsecond) // make batches actually coalesce
		return echoScore(reqs)
	}
	c := New(Options[int]{Window: 100 * time.Microsecond, MaxBatch: 8}, score)
	defer c.Close()

	clients, perClient := 16, 25
	if testing.Short() {
		clients, perClient = 4, 10
	}
	var wg sync.WaitGroup
	var failures atomic.Uint64
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				q := g*1000 + k
				v, err := c.Do(context.Background(), q)
				if err != nil || v != q*2 {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed or got a stranger's result", failures.Load(), clients*perClient)
	}
	st := c.Stats()
	if int(st.Requests) != clients*perClient {
		t.Fatalf("stats %+v, want %d requests", st, clients*perClient)
	}
	if st.MaxBatch < 2 {
		t.Logf("note: no coalescing observed under stress (max batch %d)", st.MaxBatch)
	}
}

// TestExpiredContextRejectedAtAdmission: a request whose context is
// already cancelled or past its deadline must never reach a batch — Do
// returns the ctx error immediately, OnDrop fires, and the scorer sees
// nothing.
func TestExpiredContextRejectedAtAdmission(t *testing.T) {
	var scored atomic.Uint64
	var dropped atomic.Uint64
	score := func(reqs []int) []Outcome[int] {
		scored.Add(uint64(len(reqs)))
		return echoScore(reqs)
	}
	c := New(Options[int]{MaxBatch: 8, OnDrop: func(int) { dropped.Add(1) }}, score)
	defer c.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(cancelled, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := c.Do(expired, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx: err = %v, want context.DeadlineExceeded", err)
	}

	if got := dropped.Load(); got != 2 {
		t.Fatalf("OnDrop fired %d times, want 2", got)
	}
	st := c.Stats()
	if st.Dropped != 2 || st.Requests != 0 || st.Batches != 0 {
		t.Fatalf("stats %+v, want 2 drops and zero scored batches", st)
	}

	// A live request through the same coalescer still works.
	if v, err := c.Do(context.Background(), 21); err != nil || v != 42 {
		t.Fatalf("live request got (%d, %v), want (42, nil)", v, err)
	}
	if scored.Load() != 1 {
		t.Fatalf("scorer saw %d requests, want exactly the live one", scored.Load())
	}
}
