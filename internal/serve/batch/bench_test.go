package batch

import (
	"context"
	"testing"
	"time"
)

// benchScore simulates a model call with a fixed per-call overhead plus a
// small per-row cost — the shape batching exploits: a batch of K pays the
// overhead once instead of K times.
func benchScore(reqs []int) []Outcome[int] {
	time.Sleep(20 * time.Microsecond) // per-call overhead
	outs := make([]Outcome[int], len(reqs))
	for i, q := range reqs {
		outs[i] = Outcome[int]{Value: q + 1}
	}
	return outs
}

func benchCoalescer(b *testing.B, window time.Duration, maxBatch int) {
	c := New(Options[int]{Window: window, MaxBatch: maxBatch}, benchScore)
	defer c.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.Do(context.Background(), i); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func BenchmarkCoalescerSerialLane(b *testing.B) { benchCoalescer(b, 0, 1) }

func BenchmarkCoalescerBatch32(b *testing.B) {
	benchCoalescer(b, 100*time.Microsecond, 32)
}
