// Package batch implements the request-coalescing front of the serving
// tier: concurrent callers hand their requests to a Coalescer, which
// collects them for up to a configurable window (or until a batch fills)
// and scores the whole batch through one model call, fanning the results
// back out to the waiting callers. The structure follows the per-GPU
// command-queue + dispatcher idiom — one admission front feeding one
// serialized execution lane — so models whose inference path reuses
// scratch buffers (the nn forwards) stay correct without a global lock,
// while the batched entry points (PredictProbaBatch / PredictValueBatch)
// amortize per-call overhead across every waiter in the batch.
//
// The clock is injectable, so tests drive window expiry deterministically
// instead of sleeping.
package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Do once the coalescer has been closed.
var ErrClosed = errors.New("batch: coalescer closed")

// Timer is the waitable half of an injectable clock.
type Timer interface {
	// C fires once when the timer expires.
	C() <-chan time.Time
	// Stop releases the timer; the channel may or may not have fired.
	Stop() bool
}

// Clock creates timers. The zero configuration uses the real time
// package; tests substitute a fake to control window expiry exactly.
type Clock interface {
	NewTimer(d time.Duration) Timer
}

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

type realClock struct{}

func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// RealClock returns the wall-clock Clock used when Options.Clock is nil.
func RealClock() Clock { return realClock{} }

// Outcome is one request's result: a value or an error, never both.
type Outcome[R any] struct {
	Value R
	Err   error
}

// ScoreFunc scores one batch. It must return exactly one outcome per
// request, index-aligned. Once called, the score function owns the
// requests — OnDrop is not invoked for them, so any per-request resources
// (e.g. registry handles) must be released by the score function itself,
// even on panic. A panicking score function fails its whole batch with an
// error but does not kill the coalescer.
type ScoreFunc[Q, R any] func(reqs []Q) []Outcome[R]

// Options tunes a Coalescer.
type Options[Q any] struct {
	// Window is how long the collector waits for more requests after the
	// first one arrives before flushing a partial batch. Zero or negative
	// means no waiting: a batch is whatever is already queued.
	Window time.Duration
	// MaxBatch flushes a batch at this many requests regardless of the
	// window. Values < 1 mean 1 (no coalescing; requests score one at a
	// time through the same serialized lane).
	MaxBatch int
	// Clock drives window expiry; nil uses real time.
	Clock Clock
	// OnDrop is called for every request the coalescer fails without
	// scoring (closed before collection). Callers use it to release
	// per-request resources. May be nil.
	OnDrop func(req Q)
}

// Stats is a point-in-time snapshot of coalescing behavior.
type Stats struct {
	// Batches and Requests count scored batches and the requests in them.
	Batches  uint64 `json:"batches"`
	Requests uint64 `json:"requests"`
	// SizeFlushes, WindowFlushes, and CloseFlushes split Batches by what
	// triggered the flush: MaxBatch saturation, window expiry (or a
	// no-wait drain), or shutdown.
	SizeFlushes   uint64 `json:"size_flushes"`
	WindowFlushes uint64 `json:"window_flushes"`
	CloseFlushes  uint64 `json:"close_flushes"`
	// Dropped counts requests failed without scoring (closed).
	Dropped uint64 `json:"dropped"`
	// MaxBatch is the largest batch scored so far.
	MaxBatch int `json:"max_batch"`
	// AvgBatch is Requests / Batches.
	AvgBatch float64 `json:"avg_batch"`
}

type call[Q, R any] struct {
	req  Q
	done chan Outcome[R] // buffered(1): the scorer never blocks on an abandoned waiter
}

// Coalescer is the admission front plus one serialized scoring lane.
type Coalescer[Q, R any] struct {
	opts  Options[Q]
	score ScoreFunc[Q, R]

	in      chan *call[Q, R]
	scoreCh chan []*call[Q, R]
	closed  chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	batches, requests         atomic.Uint64
	sizeFl, windowFl, closeFl atomic.Uint64
	dropped                   atomic.Uint64
	maxBatch                  atomic.Int64
}

// New starts a coalescer: a collector goroutine forming batches and a
// scorer goroutine running them through score, one at a time. Close it
// when done.
func New[Q, R any](opts Options[Q], score ScoreFunc[Q, R]) *Coalescer[Q, R] {
	if opts.MaxBatch < 1 {
		opts.MaxBatch = 1
	}
	if opts.Clock == nil {
		opts.Clock = RealClock()
	}
	c := &Coalescer[Q, R]{
		opts:  opts,
		score: score,
		// The admission buffer lets a full batch queue up while the
		// previous one scores, overlapping collection with execution.
		in:      make(chan *call[Q, R], opts.MaxBatch),
		scoreCh: make(chan []*call[Q, R], 1),
		closed:  make(chan struct{}),
	}
	c.wg.Add(2)
	go c.collect()
	go c.run()
	return c
}

// Do submits one request and blocks until its batch is scored, ctx is
// done, or the coalescer closes. A ctx cancellation after submission
// abandons the wait but not the work: the batch still scores (the result
// is discarded), so batchmates are unaffected.
func (c *Coalescer[Q, R]) Do(ctx context.Context, req Q) (R, error) {
	var zero R
	// Admission check: a request whose context is already cancelled or past
	// its deadline must not consume a batch slot — the enqueue select below
	// could otherwise win against the done channel and score work nobody
	// will read.
	if err := ctx.Err(); err != nil {
		c.drop(req)
		return zero, err
	}
	// Fail fast once closed; without this check the send below could race
	// a concurrent Close and win the select against the closed channel.
	select {
	case <-c.closed:
		c.drop(req)
		return zero, ErrClosed
	default:
	}
	cl := &call[Q, R]{req: req, done: make(chan Outcome[R], 1)}
	select {
	case c.in <- cl:
	case <-c.closed:
		c.drop(req)
		return zero, ErrClosed
	case <-ctx.Done():
		c.drop(req)
		return zero, ctx.Err()
	}
	select {
	case out := <-cl.done:
		return out.Value, out.Err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// Close stops admission, flushes and scores everything already submitted,
// and waits for both goroutines to exit. Requests that never reached a
// batch fail with ErrClosed (and OnDrop). Safe to call more than once.
func (c *Coalescer[Q, R]) Close() {
	c.once.Do(func() { close(c.closed) })
	c.wg.Wait()
	// A Do racing Close may have enqueued after the collector drained;
	// fail any such straggler now.
	c.drainIn()
}

// Stats snapshots the coalescing counters.
func (c *Coalescer[Q, R]) Stats() Stats {
	s := Stats{
		Batches:       c.batches.Load(),
		Requests:      c.requests.Load(),
		SizeFlushes:   c.sizeFl.Load(),
		WindowFlushes: c.windowFl.Load(),
		CloseFlushes:  c.closeFl.Load(),
		Dropped:       c.dropped.Load(),
		MaxBatch:      int(c.maxBatch.Load()),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.Requests) / float64(s.Batches)
	}
	return s
}

// collect forms batches: take the first waiting request, then gather more
// until the batch fills, the window expires, or the coalescer closes.
func (c *Coalescer[Q, R]) collect() {
	defer c.wg.Done()
	defer close(c.scoreCh)
	for {
		var first *call[Q, R]
		select {
		case first = <-c.in:
		case <-c.closed:
			c.drainIn()
			return
		}
		batch := []*call[Q, R]{first}
		closing := false
		switch {
		case c.opts.MaxBatch <= 1:
			c.sizeFl.Add(1)
		case c.opts.Window > 0:
			timer := c.opts.Clock.NewTimer(c.opts.Window)
		fill:
			for len(batch) < c.opts.MaxBatch {
				select {
				case cl := <-c.in:
					batch = append(batch, cl)
				case <-timer.C():
					c.windowFl.Add(1)
					break fill
				case <-c.closed:
					closing = true
					c.closeFl.Add(1)
					break fill
				}
			}
			timer.Stop()
			if len(batch) == c.opts.MaxBatch {
				c.sizeFl.Add(1)
			}
		default:
			// No window: drain whatever is already queued.
		drain:
			for len(batch) < c.opts.MaxBatch {
				select {
				case cl := <-c.in:
					batch = append(batch, cl)
				default:
					break drain
				}
			}
			if len(batch) == c.opts.MaxBatch {
				c.sizeFl.Add(1)
			} else {
				c.windowFl.Add(1)
			}
		}
		c.batches.Add(1)
		c.requests.Add(uint64(len(batch)))
		for {
			cur := c.maxBatch.Load()
			if int64(len(batch)) <= cur || c.maxBatch.CompareAndSwap(cur, int64(len(batch))) {
				break
			}
		}
		// The scorer drains scoreCh until it closes, so this send always
		// completes even during shutdown.
		c.scoreCh <- batch
		if closing {
			c.drainIn()
			return
		}
		select {
		case <-c.closed:
			c.drainIn()
			return
		default:
		}
	}
}

// run is the execution lane: one batch at a time through the score
// function, results fanned back to the waiters.
func (c *Coalescer[Q, R]) run() {
	defer c.wg.Done()
	for batch := range c.scoreCh {
		outs := c.safeScore(batch)
		for i, cl := range batch {
			cl.done <- outs[i]
		}
	}
}

// safeScore invokes the score function, converting a panic or a
// mis-shaped result into per-request errors so one bad batch cannot kill
// the lane.
func (c *Coalescer[Q, R]) safeScore(batch []*call[Q, R]) (outs []Outcome[R]) {
	reqs := make([]Q, len(batch))
	for i, cl := range batch {
		reqs[i] = cl.req
	}
	defer func() {
		if v := recover(); v != nil {
			err := fmt.Errorf("batch: score panicked: %v", v)
			outs = errOutcomes[R](len(batch), err)
		}
	}()
	outs = c.score(reqs)
	if len(outs) != len(batch) {
		err := fmt.Errorf("batch: score returned %d outcomes for %d requests", len(outs), len(batch))
		outs = errOutcomes[R](len(batch), err)
	}
	return outs
}

func errOutcomes[R any](n int, err error) []Outcome[R] {
	outs := make([]Outcome[R], n)
	for i := range outs {
		outs[i].Err = err
	}
	return outs
}

// drop fails one request that never reached a batch.
func (c *Coalescer[Q, R]) drop(req Q) {
	c.dropped.Add(1)
	if c.opts.OnDrop != nil {
		c.opts.OnDrop(req)
	}
}

// drainIn fails everything still queued for admission.
func (c *Coalescer[Q, R]) drainIn() {
	for {
		select {
		case cl := <-c.in:
			c.drop(cl.req)
			cl.done <- Outcome[R]{Err: ErrClosed}
		default:
			return
		}
	}
}
