package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stencilmart/internal/core"
)

// testServer trains one smoke-sized framework and wraps it; shared by
// all tests read-only (the server serializes predict internally).
var (
	srvOnce sync.Once
	srvInst *Server
	srvErr  error
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		fw, err := core.Build(context.Background(), core.SmokeConfig())
		if err != nil {
			srvErr = err
			return
		}
		if err := fw.TrainAll(context.Background(), core.ClassGBDT, core.RegGB); err != nil {
			srvErr = err
			return
		}
		srvInst, srvErr = New(fw, 0)
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvInst
}

func TestNewRequiresTrainedFramework(t *testing.T) {
	fw, err := core.Build(context.Background(), core.SmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(fw, 0); err == nil {
		t.Fatal("untrained framework accepted")
	}
}

func TestHealthz(t *testing.T) {
	h := testServer(t).Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body %v", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz gave %d", rec.Code)
	}
}

func postPredict(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("response %q is not JSON: %v", rec.Body.String(), err)
	}
	return rec, out
}

func TestPredictNamedStencil(t *testing.T) {
	h := testServer(t).Handler()
	rec, out := postPredict(t, h, `{"stencil":"star2d2r","gpu":"V100"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	for _, field := range []string{"stencil", "gpu", "class", "proba", "oc", "params", "tuned_seconds", "arch_names", "predicted_seconds", "advice"} {
		if _, ok := out[field]; !ok {
			t.Errorf("response missing %q: %v", field, out)
		}
	}
	if out["gpu"] != "V100" {
		t.Errorf("gpu echo %v", out["gpu"])
	}
	times, ok := out["predicted_seconds"].([]any)
	if !ok || len(times) != 4 {
		t.Fatalf("predicted_seconds %v", out["predicted_seconds"])
	}
	for _, v := range times {
		if f, ok := v.(float64); !ok || f <= 0 {
			t.Fatalf("non-positive predicted time %v", v)
		}
	}
}

func TestPredictRawOffsets(t *testing.T) {
	h := testServer(t).Handler()
	body := `{"name":"probe","dims":2,"points":[[0,0,0],[1,0,0],[-1,0,0],[0,1,0],[0,-1,0]],"gpu":"A100"}`
	rec, out := postPredict(t, h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	if out["stencil"] != "probe" {
		t.Errorf("stencil echo %v", out["stencil"])
	}
}

func TestPredictBadRequests(t *testing.T) {
	h := testServer(t).Handler()
	cases := []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"no gpu", `{"stencil":"star2d1r"}`},
		{"unknown gpu", `{"stencil":"star2d1r","gpu":"H100"}`},
		{"unknown stencil", `{"stencil":"hex2d1r","gpu":"V100"}`},
		{"both forms", `{"stencil":"star2d1r","points":[[0,0,0]],"dims":2,"gpu":"V100"}`},
		{"bad point arity", `{"points":[[0,0]],"dims":2,"gpu":"V100"}`},
		{"bad dims", `{"points":[[0,0,0]],"dims":5,"gpu":"V100"}`},
		{"unknown field", `{"stencil":"star2d1r","gpu":"V100","oops":1}`},
		{"not json", `star2d1r please`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, out := postPredict(t, h, tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d (%v), want 400", rec.Code, out)
			}
			if _, ok := out["error"]; !ok {
				t.Fatalf("error body missing: %v", out)
			}
		})
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/predict", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict gave %d", rec.Code)
	}
}

// TestPredictConcurrent hammers the handler from many goroutines: the
// internal mutex must keep the non-goroutine-safe models correct, and
// identical requests must return identical bodies.
func TestPredictConcurrent(t *testing.T) {
	h := testServer(t).Handler()
	const workers = 8
	bodies := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"stencil":"box2d1r","gpu":"P100"}`))
			h.ServeHTTP(rec, req)
			if rec.Code == http.StatusOK {
				bodies[i] = rec.Body.String()
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if bodies[i] == "" {
			t.Fatalf("worker %d failed", i)
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("concurrent responses diverge:\n%s\n%s", bodies[0], bodies[i])
		}
	}
}

func TestStatszCountsRequests(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	// At least one predict to move the counters (earlier tests may have
	// run already; we only assert monotonic, well-formed output).
	postPredict(t, h, `{"stencil":"star2d1r","gpu":"V100"}`)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Endpoints["predict"].Requests == 0 {
		t.Error("predict counter did not move")
	}
	if st.SimCache.Hits+st.SimCache.Misses == 0 {
		t.Error("sim cache counters empty after prediction work")
	}
	// Repeating an identical request must hit the sim memo cache (the
	// tuning seed derives from the request).
	before := st.SimCache.Hits
	postPredict(t, h, `{"stencil":"star2d1r","gpu":"V100"}`)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SimCache.Hits <= before {
		t.Errorf("repeated request did not hit the sim cache (%d -> %d)", before, st.SimCache.Hits)
	}
}

// TestRunServesAndShutsDown exercises the real listener path: random
// port, health check over TCP, graceful shutdown via context cancel.
func TestRunServesAndShutsDown(t *testing.T) {
	s := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	logf := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if strings.HasPrefix(line, "serving on http://") {
			addrCh <- strings.TrimPrefix(line, "serving on ")
		}
	}
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, "127.0.0.1:0", logf) }()

	var base string
	select {
	case base = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never announced its address")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP gave %d", resp.StatusCode)
	}

	var buf bytes.Buffer
	buf.WriteString(`{"stencil":"star3d1r","gpu":"A100"}`)
	resp2, err := http.Post(base+"/predict", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("predict over TCP gave %d", resp2.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}
