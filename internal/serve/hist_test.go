package serve

import (
	"testing"
	"time"
)

// TestHistBucketBoundaries pins the bucket layout: bucket i covers
// [1µs<<(i-1), 1µs<<i), boundaries land in the upper bucket, and the
// last bucket absorbs everything beyond the range.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{999 * time.Nanosecond, 0},
		{time.Microsecond, 1}, // exactly on a boundary -> upper bucket
		{2*time.Microsecond - 1, 1},
		{2 * time.Microsecond, 2},
		{time.Millisecond, 10},        // 1000µs < 1024µs = 1µs<<10
		{1024 * time.Microsecond, 11}, // exactly 1µs<<10 -> upper bucket
		{time.Second, 20},             // 1e6µs < 2^20µs
		{time.Hour, histBuckets - 1},
	}
	for _, tc := range cases {
		var h latencyHist
		h.observe(tc.d)
		for i := range h.counts {
			got := h.counts[i].Load()
			switch {
			case i == tc.bucket && got != 1:
				t.Errorf("observe(%v): bucket %d count %d, want 1", tc.d, i, got)
			case i != tc.bucket && got != 0:
				t.Errorf("observe(%v): stray count in bucket %d (want bucket %d)", tc.d, i, tc.bucket)
			}
		}
	}
}

func TestHistQuantilesEmpty(t *testing.T) {
	var h latencyHist
	if q := h.quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %g", q)
	}
}

// TestHistQuantilesBounded: every quantile estimate must land inside the
// bucket that holds its rank, for a spread of known observations.
func TestHistQuantilesBounded(t *testing.T) {
	var h latencyHist
	// 90 fast requests in [512µs, 1024µs), 9 slow in [32ms, 65ms),
	// 1 outlier in [1.07s, 2.14s).
	for i := 0; i < 90; i++ {
		h.observe(600 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.observe(40 * time.Millisecond)
	}
	h.observe(1500 * time.Millisecond)

	within := func(q float64, lo, hi time.Duration) {
		t.Helper()
		ns := h.quantile(q)
		if ns < float64(lo.Nanoseconds()) || ns > float64(hi.Nanoseconds()) {
			t.Fatalf("q%.3f = %.0fns, want within [%v, %v]", q, ns, lo, hi)
		}
	}
	within(0.50, 512*time.Microsecond, 1024*time.Microsecond)
	within(0.99, 32*time.Millisecond, 66*time.Millisecond)
	// p999 of 100 observations is the max: the outlier's bucket.
	within(0.999, 1073*time.Millisecond, 2148*time.Millisecond)

	// Quantiles are monotone in q.
	if !(h.quantile(0.5) <= h.quantile(0.99) && h.quantile(0.99) <= h.quantile(0.999)) {
		t.Fatal("quantiles not monotone")
	}
}

// TestHistQuantileInterpolates: a uniform single-bucket population
// interpolates across the bucket instead of snapping to an edge.
func TestHistQuantileInterpolates(t *testing.T) {
	var h latencyHist
	for i := 0; i < 100; i++ {
		h.observe(3 * time.Microsecond) // bucket [2µs, 4µs)
	}
	lo, hi := 2*time.Microsecond, 4*time.Microsecond
	p25, p75 := h.quantile(0.25), h.quantile(0.75)
	if p25 < float64(lo.Nanoseconds()) || p75 > float64(hi.Nanoseconds()) {
		t.Fatalf("p25=%.0f p75=%.0f outside bucket [%v,%v]", p25, p75, lo, hi)
	}
	if p25 >= p75 {
		t.Fatalf("interpolation collapsed: p25=%.0f >= p75=%.0f", p25, p75)
	}
}
