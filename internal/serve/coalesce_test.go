package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"stencilmart/internal/serve/batch"
	"stencilmart/internal/testutil"
)

// neverClock's timers never fire: under it, batches can only flush on
// MaxBatch saturation, making batch composition deterministic for the
// differential test regardless of scheduling.
type neverClock struct{}

type neverTimer struct{ ch chan time.Time }

func (neverClock) NewTimer(time.Duration) batch.Timer { return neverTimer{make(chan time.Time)} }
func (t neverTimer) C() <-chan time.Time              { return t.ch }
func (neverTimer) Stop() bool                         { return true }

// diffBodies builds M = shapes x GPUs distinct request bodies, M a
// multiple of the batch size so saturation alone flushes every batch.
func diffBodies(t *testing.T) []string {
	t.Helper()
	fw := testServer(t).fw
	shapes := []string{"star2d1r", "star2d2r", "box2d1r", "star3d1r", "star3d2r", "box3d1r"}
	var bodies []string
	for _, sh := range shapes {
		for _, a := range fw.Dataset.Archs {
			bodies = append(bodies, fmt.Sprintf(`{"stencil":%q,"gpu":%q}`, sh, a.Name))
		}
	}
	return bodies
}

// TestCoalescedDifferential is the serving tier's determinism proof: M
// concurrent clients through the coalescing server must receive bodies
// byte-identical to serial Framework.ServePredict calls, at any
// GOMAXPROCS. Batches flush purely on saturation (the fake clock never
// fires), so requests provably coalesce — this is not the serial lane in
// disguise.
func TestCoalescedDifferential(t *testing.T) {
	fw := testServer(t).fw
	bodies := diffBodies(t)
	const batchSize = 8
	if len(bodies)%batchSize != 0 {
		t.Fatalf("%d bodies not a multiple of batch size %d", len(bodies), batchSize)
	}

	// Serial ground truth, encoded exactly as the handler encodes.
	want := make(map[string][]byte, len(bodies))
	for _, body := range bodies {
		var req PredictRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		st, err := stencilFromRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := fw.ServePredict(req.GPU, st)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(pred); err != nil {
			t.Fatal(err)
		}
		want[body] = buf.Bytes()
	}

	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("GOMAXPROCS%d", procs), func(t *testing.T) {
			testutil.WithGOMAXPROCS(t, procs, func() {
				s, err := NewWithOptions(fw, Options{
					BatchWindow: time.Minute, // irrelevant: the clock never fires
					BatchSize:   batchSize,
					Clock:       neverClock{},
					MaxInFlight: len(bodies),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				h := s.Handler()

				got := make([][]byte, len(bodies))
				codes := make([]int, len(bodies))
				var wg sync.WaitGroup
				for i, body := range bodies {
					wg.Add(1)
					go func(i int, body string) {
						defer wg.Done()
						rec := httptest.NewRecorder()
						req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
						h.ServeHTTP(rec, req)
						codes[i], got[i] = rec.Code, rec.Body.Bytes()
					}(i, body)
				}
				wg.Wait()

				for i, body := range bodies {
					if codes[i] != http.StatusOK {
						t.Fatalf("request %q gave %d: %s", body, codes[i], got[i])
					}
					testutil.AssertSameBytes(t, body, want[body], got[i])
				}

				st := s.co.Stats()
				wantBatches := uint64(len(bodies) / batchSize)
				if st.Batches != wantBatches || st.SizeFlushes != wantBatches {
					t.Fatalf("batch stats %+v, want %d saturation flushes", st, wantBatches)
				}
				if st.MaxBatch != batchSize {
					t.Fatalf("max batch %d, want %d", st.MaxBatch, batchSize)
				}
			})
		})
	}
}

// TestModelVersionPinning: ?model=vN routes to that version, unknown
// versions 404, and /modelz lists what is live.
func TestModelVersionPinning(t *testing.T) {
	s := hardenedServer(t, Options{BatchWindow: -1})
	if _, err := s.Registry().Publish(s.fw); err != nil { // v2, same models
		t.Fatal(err)
	}
	h := s.Handler()

	for _, pin := range []string{"", "?model=v1", "?model=v2"} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/predict"+pin, strings.NewReader(`{"stencil":"star2d1r","gpu":"V100"}`))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict %q gave %d: %s", pin, rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/predict?model=v9", strings.NewReader(`{"stencil":"star2d1r","gpu":"V100"}`))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown model pin gave %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/modelz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("modelz gave %d", rec.Code)
	}
	var out struct {
		Current  string `json:"current"`
		Versions []struct {
			Version string `json:"version"`
		} `json:"versions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Current != "v2" || len(out.Versions) != 2 {
		t.Fatalf("modelz listing %+v, want v2 current of 2", out)
	}
}

// TestModelSwapUnderLoad is the rollout acceptance test: while clients
// hammer /predict, a checkpoint publishes as v2 and v1 retires — and not
// one request may fail. Pinned v1 requests work before the swap and 404
// after v1 is drained away.
func TestModelSwapUnderLoad(t *testing.T) {
	fw := testServer(t).fw
	ckpt := filepath.Join(t.TempDir(), "model.ckpt")
	if err := fw.SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}

	s, err := NewWithOptions(fw, Options{
		BatchWindow: 200 * time.Microsecond,
		BatchSize:   8,
		MaxInFlight: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	post := func(target, body string) (int, string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	// Pinned v1 serves before the swap.
	if code, body := post("/predict?model=v1", `{"stencil":"star2d1r","gpu":"V100"}`); code != http.StatusOK {
		t.Fatalf("pinned v1 pre-swap gave %d: %s", code, body)
	}

	const clients, perClient = 6, 25
	bodies := diffBodies(t)
	type failure struct {
		code int
		body string
	}
	failures := make(chan failure, clients*perClient)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				code, body := post("/predict", bodies[(c*perClient+i)%len(bodies)])
				if code != http.StatusOK {
					failures <- failure{code, body}
				}
			}
		}(c)
	}
	close(start)

	// Roll out mid-load: publish the checkpoint, drain and retire v1.
	code, body := post("/modelz", fmt.Sprintf(`{"path":%q,"retire_old":true}`, ckpt))
	if code != http.StatusOK {
		t.Fatalf("rollout gave %d: %s", code, body)
	}
	var roll struct {
		Published string `json:"published"`
		Current   string `json:"current"`
		Retired   string `json:"retired"`
	}
	if err := json.Unmarshal([]byte(body), &roll); err != nil {
		t.Fatal(err)
	}
	if roll.Published != "v2" || roll.Current != "v2" || roll.Retired != "v1" {
		t.Fatalf("rollout response %+v", roll)
	}

	wg.Wait()
	close(failures)
	for f := range failures {
		t.Errorf("request failed during rollout: %d %s", f.code, f.body)
	}

	// v1 is gone: pinned requests 404 now.
	if code, body := post("/predict?model=v1", `{"stencil":"star2d1r","gpu":"V100"}`); code != http.StatusNotFound {
		t.Fatalf("pinned v1 post-retire gave %d: %s", code, body)
	}
	vs := s.Registry().Versions()
	if len(vs) != 1 || vs[0].Version != "v2" || vs[0].Refs != 0 {
		t.Fatalf("versions after rollout %+v, want only v2 with no refs", vs)
	}
}
