package serve

import (
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of a latency histogram: powers
// of two from 1µs. Bucket 0 covers [0, 1µs), bucket i >= 1 covers
// [1µs<<(i-1), 1µs<<i), and the last bucket is open-ended above
// 1µs<<26 (~67s) — wide enough for any served request, cheap enough to
// snapshot on every /statsz hit.
const histBuckets = 28

// histBound returns the exclusive upper bound of bucket i.
func histBound(i int) time.Duration { return time.Microsecond << i }

// latencyHist is a fixed-bucket exponential histogram with atomic
// counters: observation is one Add on the hot path, and quantiles are
// interpolated from bucket boundaries on the (cold) stats path. Unlike
// the average it replaces, it keeps tail latencies visible — a p999
// stuck behind a slow batch shows up even when the mean looks healthy.
type latencyHist struct {
	counts [histBuckets]atomic.Uint64
}

// observe records one duration.
func (h *latencyHist) observe(d time.Duration) {
	for i := 0; i < histBuckets-1; i++ {
		if d < histBound(i) {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[histBuckets-1].Add(1)
}

// quantile returns the q-quantile (0 < q <= 1) estimate in nanoseconds,
// interpolating linearly inside the bucket that holds the target rank.
// Returns 0 when the histogram is empty.
func (h *latencyHist) quantile(q float64) float64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lower := 0.0
			if i > 0 {
				lower = float64(histBound(i - 1).Nanoseconds())
			}
			upper := float64(histBound(i).Nanoseconds())
			return lower + (upper-lower)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return float64(histBound(histBuckets - 1).Nanoseconds())
}

// quantileMillis converts a quantile estimate to milliseconds.
func (h *latencyHist) quantileMillis(q float64) float64 { return h.quantile(q) / 1e6 }
