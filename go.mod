module stencilmart

go 1.22
