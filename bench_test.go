// Benchmarks regenerating every table and figure of the paper (run with
// `go test -bench=. -benchmem` or a single artifact via
// `go test -bench=BenchmarkFig9 -benchtime=1x`). Each experiment
// benchmark prints the same rows/series the paper reports; substrate
// micro-benchmarks at the bottom measure the building blocks.
package stencilmart_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"stencilmart"
	"stencilmart/internal/core"
	"stencilmart/internal/experiments"
	"stencilmart/internal/gen"
	"stencilmart/internal/opt"
	"stencilmart/internal/profile"
	"stencilmart/internal/sim"
	"stencilmart/internal/stencil"
	"stencilmart/internal/tensor"
)

// benchConfig sizes the experiment benchmarks. It is deliberately larger
// than the unit-test config — figures need enough stencils per fold to be
// meaningful — but far below the paper's 500+500 corpus so the full bench
// suite completes in minutes of pure-Go compute.
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Corpus2D, cfg.Corpus3D = 60, 45
	cfg.SamplesPerOC = 16
	cfg.MaxRegressionInstances = 4000
	// Network budgets sized for single-core pure-Go training; the trends,
	// not the absolute accuracies, are the reproduction target. The GEMM
	// backbone (internal/linalg) cut per-epoch conv cost ~3x, which is what
	// pays for the ConvMLP budget at 16 epochs instead of the pre-GEMM 4.
	cfg.ConvNetTrain.Epochs = 30
	cfg.FcNetTrain.Epochs = 30
	cfg.MLPTrain.Epochs = 15
	cfg.ConvMLPTrain.Epochs = 16
	return cfg
}

// benchRunner shares one lazily built framework across experiment
// benchmarks so corpus profiling is paid once per `go test -bench` run.
var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// benchOut routes experiment output to stdout so `tee bench_output.txt`
// captures the regenerated figures alongside the timings.
func benchOut() io.Writer { return os.Stdout }

func sharedRunner() *experiments.Runner {
	runnerOnce.Do(func() {
		runner = experiments.New(benchConfig(), benchOut())
	})
	return runner
}

// runExperiment executes one paper artifact b.N times, printing the
// figure output only on the first iteration so fast experiments do not
// flood the benchmark log when the harness raises b.N.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r := sharedRunner()
	saved := r.Out
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i == 1 {
			r.Out = io.Discard
		}
		if err := r.Run(id); err != nil {
			r.Out = saved
			b.Fatalf("%s: %v", id, err)
		}
	}
	r.Out = saved
}

// --- One benchmark per paper table and figure. ---

func BenchmarkTable1OCEnumeration(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2FeatureSet(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTable3GPUCatalog(b *testing.B)    { runExperiment(b, "table3") }
func BenchmarkFig1BestWorstGap(b *testing.B)    { runExperiment(b, "fig1") }
func BenchmarkFig2BestOCDistribution(b *testing.B) {
	runExperiment(b, "fig2")
}
func BenchmarkFig3PairwisePCC(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkFig4CrossArch(b *testing.B)       { runExperiment(b, "fig4") }
func BenchmarkFig9Classification(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFig10VsArtemis(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11VsAN5D(b *testing.B)         { runExperiment(b, "fig11") }
func BenchmarkFig12Regression(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13MLPSweep(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14PurePerf(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkFig15CostEfficiency(b *testing.B) { runExperiment(b, "fig15") }

// --- Ablation benchmarks for DESIGN.md section 5 decisions. ---

// BenchmarkAblationNoiseSweep sweeps the simulator's stencil-arch
// affinity noise and reports how the Fig. 14 winner distribution entropy
// reacts (design decision 5).
func BenchmarkAblationNoiseSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sigma := range []float64{0, 0.1, 0.2, 0.4} {
			noise := sim.DefaultNoise()
			noise.StencilArch = sigma
			m := sim.NewWithNoise(noise)
			corpus, err := gen.MixedCorpus(30, 0, 4, 3)
			if err != nil {
				b.Fatal(err)
			}
			wins := map[string]int{}
			rng := rand.New(rand.NewSource(4))
			combos := opt.Combinations()
			for _, s := range corpus {
				w := sim.DefaultWorkload(s)
				oc := combos[rng.Intn(len(combos))]
				p := opt.Sample(oc, s.Dims, rng)
				bestName, bestT := "", 0.0
				for _, a := range stencilmart.GPUCatalog() {
					r, err := m.Run(w, oc, p, a)
					if err != nil {
						continue
					}
					if bestName == "" || r.Time < bestT {
						bestName, bestT = a.Name, r.Time
					}
				}
				wins[bestName]++
			}
			fmt.Fprintf(benchOut(), "ablation noise sigma=%.2f: winner counts %v\n", sigma, wins)
		}
	}
}

// BenchmarkAblationLinearTimeTarget refits the regressor on linear
// seconds instead of log2 seconds (design decision 2) and reports the
// MAPE degradation.
func BenchmarkAblationLinearTimeTarget(b *testing.B) {
	// The log-target variant is Fig. 12 itself; here we quantify the raw
	// GBRegressor on linear targets over the same instances.
	cfg := benchConfig()
	cfg.Corpus2D, cfg.Corpus3D = 20, 0
	fw, err := core.Build(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per, overall, err := fw.RegressorMAPE(core.RegGB, 2)
		if err != nil {
			b.Fatal(err)
		}
		_ = per
		fmt.Fprintf(benchOut(), "ablation log-target GBRegressor MAPE: %.3f (linear-target fitting is implemented by regTarget; see core/features.go)\n", overall)
	}
}

// --- Substrate micro-benchmarks. ---

func BenchmarkSimulatorRun(b *testing.B) {
	m := sim.New()
	s := stencil.Box(3, 2)
	w := sim.DefaultWorkload(s)
	arch, err := stencilmart.GPUByName("V100")
	if err != nil {
		b.Fatal(err)
	}
	p := opt.Params{BlockX: 64, BlockY: 4, Merge: 1, Unroll: 2,
		StreamTile: 64, StreamDim: 3, UseSmem: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(w, opt.ST, p, arch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStencilGeneration(b *testing.B) {
	g, err := gen.New(gen.Options{Dims: 3}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

func BenchmarkTensorAssign3D(b *testing.B) {
	s := stencil.Box(3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MustAssign(s)
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	s := stencil.Box(3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.Features(s)
	}
}

func BenchmarkReferenceApplyParallel(b *testing.B) {
	s := stencil.Star(3, 2)
	in := stencil.NewGrid(96, 96, 96)
	out := stencil.NewGrid(96, 96, 96)
	coeffs := stencil.UniformCoefficients(s)
	b.SetBytes(int64(in.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stencil.ApplyParallel(s, coeffs, in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileOneStencil(b *testing.B) {
	// One stencil x one GPU x all 30 OCs x 12 settings: the unit of the
	// paper's data-collection cost.
	arch, err := stencilmart.GPUByName("A100")
	if err != nil {
		b.Fatal(err)
	}
	s := stencil.Cross(3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profilerForBench(int64(i))
		if _, _, err := p.ProfileOne(context.Background(), 0, s, arch); err != nil {
			b.Fatal(err)
		}
	}
}

// profilerForBench builds a profiler with a varying seed so repeated
// benchmark iterations do not hit identical cached noise paths.
func profilerForBench(seed int64) *profile.Profiler {
	return profile.NewProfiler(12, seed)
}
