# Convenience targets around the Go toolchain; `make check` is the full
# verification gate (build + vet + tests + race detector).

GO ?= go

.PHONY: build test vet race check serve-smoke chaos-smoke chaos-serve campaign-smoke bench bench-kernels bench-trees bench-lanes bench-serve bench-sim fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check:
	sh scripts/check.sh

serve-smoke:
	sh scripts/serve_smoke.sh

chaos-smoke:
	sh scripts/chaos_smoke.sh

# Serving-tier resilience drill: chaos-armed HTTP server, breaker trip
# into degraded fallback, bounded errors, half-open recovery.
chaos-serve:
	sh scripts/serve_chaos_smoke.sh

campaign-smoke:
	sh scripts/campaign_smoke.sh

bench:
	$(GO) test -bench=. -benchmem ./...

bench-kernels:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/linalg/ ./internal/ml/nn/

bench-trees:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/ml/tree/

# f64 reference vs compiled f32 lane, side by side: GEMM, tree
# ensembles, and network forward passes on serving-sized batches.
bench-lanes:
	$(GO) test -run='^$$' -bench='BenchmarkLane' -benchmem ./internal/linalg/ ./internal/ml/tree/ ./internal/ml/nn/

bench-serve:
	sh scripts/serve_bench.sh

# Collection throughput: compiled cell evaluators vs the pre-rewrite
# reference substrate, serial and parallel, into BENCH_sim.json.
bench-sim:
	sh scripts/sim_bench.sh

fuzz:
	$(GO) test ./internal/profile/ -fuzz FuzzDatasetRoundTrip -fuzztime 30s
