# Convenience targets around the Go toolchain; `make check` is the full
# verification gate (build + vet + tests + race detector).

GO ?= go

.PHONY: build test vet race check bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test ./internal/profile/ -fuzz FuzzDatasetRoundTrip -fuzztime 30s
